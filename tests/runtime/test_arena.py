"""BufferArena: pooling, pad scratch, ownership, sanitation, caps, threads."""

import threading

import numpy as np
import pytest

from repro.runtime.arena import BufferArena


class TestAcquireRelease:
    def test_acquire_zeroed(self):
        arena = BufferArena()
        buf = arena.acquire((2, 3), zero=True)
        assert buf.shape == (2, 3) and np.all(buf == 0)

    def test_release_then_acquire_reuses(self):
        arena = BufferArena()
        buf = arena.acquire((4, 4), zero=True)
        buf.fill(7.0)
        arena.release(buf)
        again = arena.acquire((4, 4), zero=True)
        assert again is buf
        assert np.all(again == 0)  # re-zeroed on reuse
        assert arena.reuses == 1 and arena.allocations == 1

    def test_different_shapes_different_buffers(self):
        arena = BufferArena()
        a = arena.acquire((2, 2))
        arena.release(a)
        b = arena.acquire((3, 3))
        assert b is not a
        assert arena.allocations == 2

    def test_foreign_array_release_is_noop(self):
        arena = BufferArena()
        foreign = np.zeros((2, 2), np.float32)
        arena.release(foreign)  # must not enter the pool
        got = arena.acquire((2, 2))
        assert got is not foreign

    def test_double_release_guard(self):
        arena = BufferArena()
        buf = arena.acquire((2, 2))
        arena.release(buf)
        arena.release(buf)
        first = arena.acquire((2, 2))
        second = arena.acquire((2, 2))
        assert first is not second  # buf was pooled once, not twice

    def test_owns(self):
        arena = BufferArena()
        buf = arena.acquire((1,))
        assert arena.owns(buf)
        assert not arena.owns(np.zeros(1, np.float32))


class TestPaddedScratch:
    def test_padding_zero_returns_input(self):
        arena = BufferArena()
        x = np.ones((1, 2, 3, 3), np.float32)
        assert arena.padded(x, 0) is x
        assert arena.pad_allocations == 0

    def test_border_is_zero_interior_copied(self):
        arena = BufferArena()
        x = np.full((2, 3, 4, 4), 5.0, np.float32)
        xp = arena.padded(x, 1)
        assert xp.shape == (2, 3, 6, 6)
        np.testing.assert_array_equal(xp[:, :, 1:5, 1:5], x)
        assert np.all(xp[:, :, 0, :] == 0) and np.all(xp[:, :, :, -1] == 0)

    def test_scratch_reused_and_border_stays_zero(self):
        arena = BufferArena()
        x1 = np.full((1, 1, 2, 2), 3.0, np.float32)
        buf1 = arena.padded(x1, 1)
        x2 = np.full((1, 1, 2, 2), -4.0, np.float32)
        buf2 = arena.padded(x2, 1)
        assert buf2 is buf1
        assert arena.pad_reuses == 1
        np.testing.assert_array_equal(buf2[0, 0, 1:3, 1:3], x2[0, 0])
        assert np.all(buf2[0, 0, 0, :] == 0)

    def test_distinct_padding_distinct_scratch(self):
        arena = BufferArena()
        x = np.ones((1, 1, 4, 4), np.float32)
        a = arena.padded(x, 1)
        b = arena.padded(x, 2)
        assert a is not b and a.shape != b.shape

    def test_pad_scratch_keeps_input_dtype(self):
        """Regression: pad scratch hardcoded float32, silently downcasting
        non-float32 inputs and colliding two dtypes on one buffer."""
        arena = BufferArena()
        x64 = np.full((1, 1, 2, 2), 1.5, np.float64)
        p64 = arena.padded(x64, 1)
        assert p64.dtype == np.float64
        np.testing.assert_array_equal(p64[0, 0, 1:3, 1:3], x64[0, 0])

    def test_pad_scratch_dtypes_do_not_collide(self):
        arena = BufferArena()
        x32 = np.full((1, 1, 2, 2), 3.0, np.float32)
        x64 = np.full((1, 1, 2, 2), 7.0, np.float64)
        p32 = arena.padded(x32, 1)
        p64 = arena.padded(x64, 1)
        assert p32 is not p64
        assert p32.dtype == np.float32 and p64.dtype == np.float64
        # the float32 scratch was not clobbered by the float64 write
        np.testing.assert_array_equal(p32[0, 0, 1:3, 1:3], x32[0, 0])
        assert arena.pad_allocations == 2

    def test_pad_scratch_per_thread(self):
        """Two threads padding same-shaped inputs must not share scratch."""
        arena = BufferArena()
        x = np.ones((1, 1, 2, 2), np.float32)
        main_buf = arena.padded(x, 1)
        other: list[np.ndarray] = []
        t = threading.Thread(target=lambda: other.append(arena.padded(x, 1)))
        t.start()
        t.join()
        assert other[0] is not main_buf


class TestSanitizeOutput:
    def test_owned_buffer_copied(self):
        arena = BufferArena()
        buf = arena.acquire((2, 2), zero=True)
        out = arena.sanitize_output(buf)
        assert out is not buf
        np.testing.assert_array_equal(out, buf)

    def test_view_of_owned_buffer_copied(self):
        arena = BufferArena()
        buf = arena.acquire((2, 4), zero=True)
        view = buf[0]
        assert arena.sanitize_output(view) is not view

    def test_foreign_array_passes_through(self):
        arena = BufferArena()
        arena.acquire((2, 2))
        foreign = np.ones((3, 3), np.float32)
        assert arena.sanitize_output(foreign) is foreign

    def test_clear_resets(self):
        arena = BufferArena()
        buf = arena.acquire((2, 2))
        arena.release(buf)
        arena.padded(np.ones((1, 1, 2, 2), np.float32), 1)
        arena.clear()
        assert arena.allocations == 0 and arena.pad_allocations == 0
        assert not arena.owns(buf)


class TestGrowthCap:
    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            BufferArena(max_bytes=-1)

    def test_free_buffers_evicted_lru_beyond_cap(self):
        one_kb = 256  # floats
        arena = BufferArena(max_bytes=3 * 1024)
        bufs = [arena.acquire((one_kb,)) for _ in range(5)]  # 5 KB in flight: allowed
        assert arena.footprint_bytes == 5 * 1024  # in-flight never evicted
        for b in bufs:
            arena.release(b)
        # releases trigger enforcement: retained scratch drops under the cap
        assert arena.footprint_bytes <= 3 * 1024
        assert arena.evictions >= 2
        # the survivors are the most recently released (LRU eviction)
        assert arena.owns(bufs[-1])
        assert not arena.owns(bufs[0])

    def test_evicted_buffer_not_handed_out_again(self):
        arena = BufferArena(max_bytes=0)
        buf = arena.acquire((64,))
        arena.release(buf)  # immediately evicted (cap 0)
        again = arena.acquire((64,))
        assert again is not buf
        assert arena.reuses == 0

    def test_pad_scratch_counts_toward_cap(self):
        arena = BufferArena(max_bytes=1024)
        x = np.ones((1, 1, 30, 30), np.float32)  # pad scratch 32*32*4 = 4 KB
        buf = arena.padded(x, 1)
        # over-cap pad scratch is evicted from the arena's tables, but the
        # local reference stays valid for the in-progress conv
        np.testing.assert_array_equal(buf[0, 0, 1:31, 1:31], x[0, 0])
        assert arena.footprint_bytes <= 1024
        assert arena.evictions >= 1

    def test_many_distinct_shapes_stay_bounded(self):
        cap = 64 * 1024
        arena = BufferArena(max_bytes=cap)
        for n in range(1, 40):
            buf = arena.acquire((n, 32, 32), zero=True)
            arena.padded(np.ones((n, 1, 8, 8), np.float32), 1)
            arena.release(buf)
            arena.reclaim()
            assert arena.footprint_bytes <= cap
        assert arena.evictions > 0

    def test_uncapped_arena_never_evicts(self):
        arena = BufferArena()
        for n in range(1, 20):
            arena.release(arena.acquire((n, 128)))
        assert arena.evictions == 0


class TestThreadSafety:
    def test_concurrent_acquire_release_never_share_a_buffer(self):
        """Hammer one arena from many threads; a buffer written by one
        thread must never be concurrently handed to another."""
        arena = BufferArena()
        errors = []

        def worker(tid):
            try:
                for i in range(200):
                    buf = arena.acquire((17, 13), zero=True)
                    buf.fill(tid * 1000 + i)
                    # if another thread got this same buffer, the value
                    # check below fails
                    assert np.all(buf == tid * 1000 + i)
                    arena.release(buf)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_reclaim_spares_other_threads_in_flight_buffers(self):
        arena = BufferArena()
        acquired = threading.Event()
        done = threading.Event()
        held: list[np.ndarray] = []

        def holder():
            held.append(arena.acquire((8, 8)))
            acquired.set()
            done.wait(10)

        t = threading.Thread(target=holder)
        t.start()
        acquired.wait(10)
        arena.reclaim()  # main thread's backstop must not pool the holder's buffer
        stolen = arena.acquire((8, 8))
        assert stolen is not held[0]
        done.set()
        t.join()

    def test_reclaim_pools_buffers_of_exited_threads(self):
        arena = BufferArena()
        held: list[np.ndarray] = []
        t = threading.Thread(target=lambda: held.append(arena.acquire((8, 8))))
        t.start()
        t.join()  # thread gone, its buffer still in flight
        arena.reclaim()
        assert arena.acquire((8, 8)) is held[0]

    def test_reclaim_drops_pad_scratch_of_exited_threads(self):
        """Thread-per-request traffic must not leak one pad set per dead
        thread (pad scratch is keyed by thread ident)."""
        arena = BufferArena()
        x = np.ones((1, 1, 4, 4), np.float32)
        threads = [threading.Thread(target=lambda: arena.padded(x, 1)) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        leaked = arena.footprint_bytes
        assert leaked > 0
        mine = arena.padded(x, 1)  # the caller's own pad must survive reclaim
        arena.reclaim()
        assert arena.footprint_bytes == mine.nbytes
        assert arena.padded(x, 1) is mine
