"""Multi-process sharded serving: spec round trips, routing, recovery.

The load-bearing claims under test:

* a pickled ``SessionSpec`` rebuilds (in another process) a session
  whose outputs are **bitwise** equal to the originating session's;
* the sharded router serves correct numbers, balances by outstanding
  requests, and aggregates stats — identically over the shared-memory
  transport and the TCP transport (loopback workers), which is the
  whole point of the transport seam;
* a crashed shard fails its in-flight futures with errors (never
  hangs), is respawned automatically, and subsequent traffic succeeds;
* a shard that can never come up (broken bundle) is marked permanently
  failed instead of respawn-looping.

Routing/recovery suites are parametrized over ``["shm", "tcp"]`` via
the ``transport`` fixture; shm-implementation-specific tests (slot-ring
spawn failure) stay shm-only.  Workers are real spawned processes, so
every server here is small and short-lived; a module-scoped spec keeps
capture cost paid once.
"""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    InferenceSession,
    ResilienceConfig,
    ServingConfig,
    SessionSpec,
    ShardCrashedError,
    ShardedServer,
)
from repro.runtime.cluster import projected_smallcnn_spec

IN_SIZE = 8


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("cluster") / "bundle.npz"
    return projected_smallcnn_spec(str(bundle), in_size=IN_SIZE)


@pytest.fixture(params=["shm", "tcp"])
def transport(request):
    """Every routing/recovery scenario must behave identically over the
    shared-memory and the (loopback) TCP transport."""
    return request.param


@pytest.fixture(scope="module")
def local_session(spec):
    return spec.build()


def _rand(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, IN_SIZE, IN_SIZE)).astype(np.float32)


def _wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# SessionSpec round trip
# ----------------------------------------------------------------------
class TestSessionSpec:
    def test_pickle_roundtrip_is_equal(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.serving_config == spec.serving_config

    def test_rebuilt_session_bitwise_equal(self, spec, local_session):
        """Two independent builds (as two workers would do) must compute
        the *same function to the bit* — the whole cluster's correctness
        story rests on shard interchangeability."""
        other = pickle.loads(pickle.dumps(spec)).build()
        x = _rand(6, seed=3)
        np.testing.assert_array_equal(local_session.run(x), other.run(x))
        other.close()

    def test_rebuilt_session_actually_compiled(self, spec):
        session = spec.build()
        assert session.kernel_cache is not None  # FKW path, not dense fallback
        session.close()

    def test_capture_records_output_shape(self, spec):
        assert spec.output_shape == (10,)
        assert spec.probe_output_shape() == (10,)

    def test_capture_normalizes_suffixless_bundle_path(self, tmp_path):
        """savez appends .npz to a suffixless path; the spec must record
        the file that actually exists or every worker build fails."""
        from repro.models import build_small_cnn

        model = build_small_cnn(channels=(4, 8), in_size=IN_SIZE, seed=1)
        model.eval()
        spec = SessionSpec.capture(
            "smallcnn", model, (3, IN_SIZE, IN_SIZE), str(tmp_path / "bundle"),
            model_kwargs={"channels": (4, 8), "in_size": IN_SIZE},
        )
        assert spec.bundle_path.endswith(".npz")
        assert os.path.exists(spec.bundle_path)
        spec.build().close()

    def test_capture_rejects_unknown_model(self, tmp_path):
        from repro.models import build_small_cnn

        model = build_small_cnn(in_size=IN_SIZE)
        with pytest.raises(KeyError, match="unknown"):
            SessionSpec.capture("no-such-model", model, (3, IN_SIZE, IN_SIZE), str(tmp_path / "b.npz"))

    def test_dense_spec_roundtrip(self, tmp_path):
        """A spec without pruning artifacts rebuilds a reference session."""
        from repro.models import build_small_cnn

        model = build_small_cnn(channels=(4, 8), in_size=IN_SIZE, seed=1)
        model.eval()
        dense = SessionSpec.capture(
            "smallcnn", model, (3, IN_SIZE, IN_SIZE), str(tmp_path / "dense.npz"),
            model_kwargs={"channels": (4, 8), "in_size": IN_SIZE},
        )
        session = dense.build()
        expected = InferenceSession(model, (3, IN_SIZE, IN_SIZE))
        x = _rand(2, seed=5)
        np.testing.assert_array_equal(session.run(x), expected.run(x))
        session.close()


# ----------------------------------------------------------------------
# Sharded serving
# ----------------------------------------------------------------------
class TestShardedServer:
    def test_concurrent_traffic_correct_and_balanced(self, spec, local_session, transport):
        n_clients, per_client = 8, 6
        # coalescing changes the dispatched batch shape, which shifts BLAS
        # kernel choice and float rounding — concurrent traffic verifies to
        # tight tolerances; the bitwise gate is the sequential test below,
        # where the worker provably dispatches exactly the request's batch
        requests = [_rand(2, seed=100 + i) for i in range(n_clients)]
        expected = [local_session.run(r) for r in requests]
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []
        with ShardedServer(spec, num_shards=2, health_interval_s=0.2, transport=transport) as server:

            def client(i):
                try:
                    for _ in range(per_client):
                        results[i] = server.submit(requests[i]).result(timeout=60)
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors[0]
            for i in range(n_clients):
                np.testing.assert_allclose(results[i], expected[i], rtol=1e-4, atol=1e-5)
            server.close()
            stats = server.cluster_stats
        total = n_clients * per_client
        assert stats["requests"] == total
        assert stats["errors"] == 0 and stats["outstanding"] == 0
        # both shards actually took traffic (least-outstanding routing)
        per_shard = [s["requests"] for s in stats["shards"]]
        assert all(r > 0 for r in per_shard) and sum(per_shard) == total
        # workers saw every sample and coalesced at least some requests
        assert stats["worker_samples"] == 2 * total
        assert 0 < stats["worker_batches"] <= total
        serving = [s["serving"] for s in stats["shards"]]
        assert all(s is not None and s["errors"] == 0 for s in serving)
        assert all(s["p95_ms"] >= s["p50_ms"] > 0 for s in serving)

    def test_sequential_requests_bitwise_equal(self, spec, local_session, transport):
        """One request in flight at a time: each dispatches alone in its
        worker (same batch shape as session.run -> identical kernel
        arithmetic), so spec rebuild + shm transport must be
        byte-transparent."""
        with ShardedServer(spec, num_shards=2, transport=transport) as server:
            for i, n in enumerate([1, 1, 2, 3, 1, 4]):
                x = _rand(n, seed=200 + i)
                np.testing.assert_array_equal(server.run(x, timeout=60), local_session.run(x))

    def test_worker_error_propagates_and_shard_survives(self, spec, transport):
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2, transport=transport) as server:
            bad = server.submit(np.zeros((1, 5, IN_SIZE, IN_SIZE), np.float32))  # 5 channels
            with pytest.raises(RuntimeError, match="shard 0"):
                bad.result(timeout=60)
            # the worker handled it as a request error, not a crash
            out = server.run(_rand(1), timeout=60)
            assert out.shape == (1, 10)
            server.close()
            stats = server.cluster_stats
            assert stats["respawns"] == 0
            assert stats["errors"] == 1

    def test_submit_validation(self, spec, transport):
        with ShardedServer(spec, num_shards=1, transport=transport) as server:
            with pytest.raises(ValueError, match="expected"):
                server.submit(np.zeros((IN_SIZE, IN_SIZE), np.float32))
            with pytest.raises(ValueError, match="max_request_samples"):
                server.submit(np.zeros((64, 3, IN_SIZE, IN_SIZE), np.float32))
            with pytest.raises(ValueError, match="transport slots"):
                server.submit(np.zeros((16, 3, IN_SIZE, IN_SIZE), np.float64))

    def test_submit_after_close_raises(self, spec, transport):
        server = ShardedServer(spec, num_shards=1, transport=transport)
        server.run(_rand(1), timeout=60)
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(_rand(1))

    def test_close_drains_in_flight_requests(self, spec, transport):
        """close() must resolve already-submitted futures, not orphan them."""
        server = ShardedServer(spec, num_shards=2, transport=transport)
        futs = [server.submit(_rand(1, seed=i)) for i in range(12)]
        server.close()
        for fut in futs:
            assert fut.result(timeout=1).shape == (1, 10)

    def test_constructor_validation(self, spec):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedServer(spec, num_shards=0)
        with pytest.raises(ValueError, match="slots_per_shard"):
            ShardedServer(spec, num_shards=1, slots_per_shard=0)


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_killed_shard_fails_futures_respawns_and_recovers(self, spec, transport):
        """With retries disabled, a crash surfaces as ShardCrashedError on
        the in-flight futures (the pre-retry contract — still the right
        mode for clients that do their own retries).  The retry-enabled
        counterpart lives in test_resilience.py."""
        x = _rand(1)
        with ShardedServer(
            spec,
            num_shards=2,
            health_interval_s=0.2,
            resilience=ResilienceConfig(max_retries=0),
            transport=transport,
        ) as server:
            # warm up both shards
            for _ in range(4):
                server.run(x, timeout=60)
            victim = server._shards[0]
            pid = victim.process.pid
            # freeze the victim so requests provably pile up on it, then
            # kill it mid-traffic — the deterministic version of "crashed
            # with requests in flight"
            os.kill(pid, signal.SIGSTOP)
            # the frozen shard keeps the lowest outstanding count, so the
            # router keeps offering it requests that then never drain
            doomed = []
            for _ in range(100):
                doomed.append(server.submit(x))
                if victim.outstanding > 0:
                    break
                time.sleep(0.01)
            assert victim.outstanding > 0
            os.kill(pid, signal.SIGKILL)

            # every in-flight future resolves (error or success) — no hangs
            crashed = 0
            for fut in doomed:
                try:
                    fut.result(timeout=60)
                except ShardCrashedError:
                    crashed += 1
            assert crashed > 0  # the victim's requests got errors, not hangs

            # the shard comes back with a fresh process
            assert _wait_until(
                lambda: server.cluster_stats["alive_shards"] == 2
                and server.cluster_stats["respawns"] == 1
            ), server.cluster_stats
            assert server.worker_pids()[0] != pid

            # and the cluster serves correctly again on both shards
            for i in range(8):
                assert server.run(_rand(1, seed=300 + i), timeout=60).shape == (1, 10)
            server.close()
            stats = server.cluster_stats
        assert stats["respawns"] == 1
        assert stats["errors"] == crashed

    def test_single_shard_submit_waits_out_respawn(self, spec, transport):
        """With every shard down but a respawn pending, submit must block
        until the replacement lands — not raise 'no live shards'."""
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2, transport=transport) as server:
            x = _rand(1)
            server.run(x, timeout=60)  # warmed: next death is not "early"
            victim = server._shards[0]
            pid = victim.process.pid
            os.kill(pid, signal.SIGKILL)
            # once the router marks the shard down, a submit lands in the
            # down->respawn window (a submit *before* that legitimately
            # races the crash and gets ShardCrashedError)
            assert _wait_until(lambda: victim.down, timeout=20)
            out = server.run(x, timeout=120)
            assert out.shape == (1, 10)
            assert server.worker_pids()[0] != pid
            assert server.cluster_stats["respawns"] == 1

    def test_peer_death_mid_drain_resolves_futures_promptly(self, spec, transport):
        """A peer that disconnects while close() is draining must resolve
        that shard's in-flight futures with a typed error immediately —
        not leave clients (and close itself) waiting out the full drain
        timeout."""
        drain_timeout = 30.0
        server = ShardedServer(
            spec, num_shards=1, health_interval_s=0.2,
            resilience=ResilienceConfig(max_retries=0),
            transport=transport,
        )
        server.run(_rand(1), timeout=60)  # warmed: death is not "early"
        victim = server._shards[0]
        pid = victim.process.pid
        os.kill(pid, signal.SIGSTOP)  # wedge the worker so the drain blocks
        fut = server.submit(_rand(1, seed=9))
        assert _wait_until(lambda: victim.outstanding > 0, timeout=10)

        start = time.monotonic()
        closer = threading.Thread(target=server.close, args=(drain_timeout,))
        closer.start()
        time.sleep(0.5)  # close() is now inside the drain wait
        os.kill(pid, signal.SIGKILL)  # peer dies mid-drain

        with pytest.raises(ShardCrashedError, match="crashed"):
            fut.result(timeout=15)  # typed error, long before the drain timeout
        closer.join(timeout=15)
        assert not closer.is_alive(), "close() waited out the drain timeout"
        assert time.monotonic() - start < drain_timeout / 2
        assert server.cluster_stats["respawns"] == 0  # closing: no replacement

    def test_partial_spawn_failure_reaps_started_workers(self, spec, monkeypatch):
        """A constructor that dies mid-spawn must not leak the workers and
        segments it already started.  (shm-only: the failure is injected
        into the slot-ring allocation, an shm implementation detail.)"""
        from repro.runtime import transport_shm as transport_shm_mod

        real_create = transport_shm_mod.ShmSlotRing.create
        calls = {"n": 0}

        def failing_create(slots, slot_bytes):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("no space left on /dev/shm (simulated)")
            return real_create(slots, slot_bytes)

        monkeypatch.setattr(
            transport_shm_mod.ShmSlotRing, "create", staticmethod(failing_create)
        )
        started: list = []
        real_spawn = ShardedServer._spawn_shard

        def tracking_spawn(self, index):
            shard = real_spawn(self, index)
            started.append(shard)
            return shard

        monkeypatch.setattr(ShardedServer, "_spawn_shard", tracking_spawn)
        with pytest.raises(OSError, match="no space left"):
            ShardedServer(spec, num_shards=2)
        assert len(started) == 1  # first shard spawned, second create failed
        started[0].process.join(timeout=10)
        assert not started[0].process.is_alive()  # reaped, not leaked

    def test_unbuildable_spec_fails_permanently_not_respawn_loop(self, spec, tmp_path, transport):
        broken = SessionSpec(
            model=spec.model,
            input_shape=spec.input_shape,
            bundle_path=str(tmp_path / "missing.npz"),
            model_kwargs=dict(spec.model_kwargs),
            output_shape=spec.output_shape,
        )
        server = ShardedServer(broken, num_shards=1, health_interval_s=0.2, transport=transport)
        try:
            # worker dies young twice -> permanent failure (one respawn in
            # between, so wait for the terminal state, not a transient down)
            assert _wait_until(
                lambda: server._shards[0].down
                and "permanently failed" in (server._shards[0].fail_reason or ""),
                timeout=30,
            ), (server._shards[0].down, server._shards[0].fail_reason)
            with pytest.raises(RuntimeError, match="no live shards"):
                server.submit(_rand(1))
            assert server._shards[0].respawns <= 2  # bounded, no hot loop
            reason = server._shards[0].fail_reason
            assert "permanently failed" in reason and "build session" in reason
        finally:
            server.close()
