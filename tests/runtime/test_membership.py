"""Elastic membership: runtime add/remove with drain-before-remove.

The load-bearing claims under test, per the membership contract:

* ``add_shard`` joins a worker to a *live* cluster (local spawn, or a
  remote ``host:port`` worker — even on an shm cluster) and the new
  shard demonstrably serves traffic (``requests > 0`` in
  ``cluster_stats``);
* ``remove_shard(drain=True)`` under concurrent client load completes
  with **zero client-visible errors** — routing stops first, in-flight
  requests settle, then the endpoint is torn down and a
  ``shard_removed`` event lands;
* a shard SIGKILLed mid-drain resolves its futures with typed errors
  (never hangs) and the removal still completes promptly — no respawn
  for a shard on its way out;
* shard indices are never reused, every membership change bumps the
  stats ``generation``, and the last routable shard cannot be removed;
* the same operations work through the admin server's POST routes and
  the :class:`~repro.runtime.membership.ShardFileWatcher` shard-list
  file.

Routing/drain scenarios are parametrized over ``["shm", "tcp"]`` like
the chaos suite; watcher/admin plumbing runs once over shm.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.runtime import (
    ResilienceConfig,
    ShardCrashedError,
    ShardedServer,
    ShardFileWatcher,
    TelemetryConfig,
    parse_shard_file,
    worker_serve,
)
from repro.runtime.cluster import projected_smallcnn_spec

IN_SIZE = 8


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("membership") / "bundle.npz"
    return projected_smallcnn_spec(str(bundle), in_size=IN_SIZE)


@pytest.fixture(scope="module")
def local_session(spec):
    session = spec.build()
    yield session
    session.close()


@pytest.fixture(params=["shm", "tcp"])
def transport(request):
    """Membership must behave identically over shared memory and TCP."""
    return request.param


def _rand(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, IN_SIZE, IN_SIZE)).astype(np.float32)


def _wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _shard_entry(server, index):
    for entry in server.cluster_stats["shards"]:
        if entry["shard"] == index:
            return entry
    return None


# ----------------------------------------------------------------------
# Python API semantics
# ----------------------------------------------------------------------
class TestMembershipAPI:
    def test_add_shard_serves_traffic(self, spec, local_session, transport):
        """A shard added to a live cluster takes real traffic: its
        router-side request counter moves and outputs stay correct."""
        x = _rand(4, seed=1)
        expected = local_session.run(x)
        with ShardedServer(spec, num_shards=1, transport=transport,
                           health_interval_s=0.2) as server:
            np.testing.assert_allclose(server.run(x), expected, rtol=1e-4, atol=1e-5)
            added = server.add_shard()
            assert added == 1
            entry = _shard_entry(server, added)
            assert entry is not None and not entry["draining"]
            assert server.cluster_stats["generation"] >= 1

            # the fresh shard has the fewest outstanding requests, so
            # concurrent traffic must reach it
            def hammer():
                futs = [server.submit(x) for _ in range(16)]
                for f in futs:
                    np.testing.assert_allclose(
                        f.result(timeout=60), expected, rtol=1e-4, atol=1e-5
                    )

            assert _wait_until(
                lambda: (hammer(), _shard_entry(server, added)["requests"] > 0)[1],
                timeout=30.0,
            )
            assert "shard_added" in server.events.kinds()

    def test_remove_shard_drains_and_leaves(self, spec, local_session, transport):
        x = _rand(2, seed=2)
        expected = local_session.run(x)
        with ShardedServer(spec, num_shards=2, transport=transport,
                           health_interval_s=0.2) as server:
            np.testing.assert_allclose(server.run(x), expected, rtol=1e-4, atol=1e-5)
            before = server.cluster_stats["generation"]
            outcome = server.remove_shard(1, drain=True)
            assert outcome["drained"] is True
            assert outcome["failed"] == 0
            assert outcome["generation"] > before
            stats = server.cluster_stats
            assert [e["shard"] for e in stats["shards"]] == [0]
            assert stats["generation"] == outcome["generation"]
            assert "shard_removed" in server.events.kinds()
            # the survivor still serves
            np.testing.assert_allclose(server.run(x), expected, rtol=1e-4, atol=1e-5)

    def test_indices_never_reused(self, spec, transport):
        with ShardedServer(spec, num_shards=2, transport=transport,
                           health_interval_s=0.2) as server:
            server.remove_shard(1)
            assert server.add_shard() == 2  # not 1: indices are monotonic
            assert sorted(e["shard"] for e in server.cluster_stats["shards"]) == [0, 2]

    def test_remove_last_shard_refused(self, spec):
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2) as server:
            with pytest.raises(ValueError, match="last routable shard"):
                server.remove_shard(0)
            assert [e["shard"] for e in server.cluster_stats["shards"]] == [0]

    def test_remove_unknown_index(self, spec):
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2) as server:
            with pytest.raises(KeyError, match="no shard with index 7"):
                server.remove_shard(7)

    def test_membership_after_close_raises(self, spec):
        server = ShardedServer(spec, num_shards=1, health_interval_s=0.2)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.add_shard()
        with pytest.raises(RuntimeError, match="closed"):
            server.remove_shard(0)

    def test_add_remote_address_on_shm_cluster(self, spec, local_session):
        """add_shard("host:port") joins an external TCP worker even when
        the cluster's own transport is shm — mixed-transport membership,
        the deploy-anywhere case the launcher seam exists for."""
        bound = []
        ready = threading.Event()
        worker = threading.Thread(
            target=worker_serve,
            args=("127.0.0.1", 0),
            kwargs={"once": True, "on_bound": lambda p: (bound.append(p), ready.set())},
            daemon=True,
        )
        worker.start()
        assert ready.wait(10)
        x = _rand(3, seed=3)
        expected = local_session.run(x)
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2) as server:
            added = server.add_shard(f"127.0.0.1:{bound[0]}")
            entry = _shard_entry(server, added)
            assert entry["address"] == f"127.0.0.1:{bound[0]}"
            assert entry["pid"] is None  # remote: no local process handle

            def hammer():
                futs = [server.submit(x) for _ in range(16)]
                for f in futs:
                    np.testing.assert_allclose(
                        f.result(timeout=60), expected, rtol=1e-4, atol=1e-5
                    )

            assert _wait_until(
                lambda: (hammer(), _shard_entry(server, added)["requests"] > 0)[1],
                timeout=30.0,
            )
        worker.join(timeout=10)


# ----------------------------------------------------------------------
# Membership chaos: add/remove under concurrent load
# ----------------------------------------------------------------------
class TestMembershipUnderLoad:
    def test_remove_and_add_under_16_client_load(
        self, spec, local_session, transport
    ):
        """The acceptance scenario: with 16 closed-loop clients running,
        remove a shard (drain) and add a fresh one in the same run —
        zero client-visible errors, and the new shard serves requests."""
        n_clients = 16
        xs = [_rand(1, seed=100 + i) for i in range(n_clients)]
        expected = [local_session.run(x) for x in xs]
        stop = threading.Event()
        errors: list[BaseException] = []
        served = [0] * n_clients

        with ShardedServer(spec, num_shards=2, transport=transport,
                           health_interval_s=0.2) as server:
            def client(i):
                try:
                    while not stop.is_set():
                        out = server.submit(xs[i]).result(timeout=60)
                        np.testing.assert_allclose(
                            out, expected[i], rtol=1e-4, atol=1e-5
                        )
                        served[i] += 1
                except BaseException as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            try:
                assert _wait_until(lambda: sum(served) > 50, timeout=30.0)
                added = server.add_shard()
                assert _wait_until(
                    lambda: (_shard_entry(server, added) or {}).get("requests", 0) > 0,
                    timeout=30.0,
                ), "added shard never served a request"
                outcome = server.remove_shard(0, drain=True, timeout=30.0)
                assert outcome["failed"] == 0  # drain + retries: no typed failures
                before_stop = sum(served)
                assert _wait_until(
                    lambda: sum(served) > before_stop + 20, timeout=30.0
                )  # the shrunken cluster still makes progress
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=60)
            assert not errors, errors[:3]
            stats = server.cluster_stats
            assert 0 not in [e["shard"] for e in stats["shards"]]
            assert _shard_entry(server, added)["requests"] > 0
            assert stats["errors"] == 0
            assert stats["generation"] >= 2  # one add + one remove at least

    def test_sigkill_during_drain_resolves_typed(self, spec, transport):
        """A shard that dies mid-drain must resolve every parked future
        with a typed error (no retry budget here) and the removal must
        still complete promptly — without respawning the victim."""
        with ShardedServer(
            spec, num_shards=2, transport=transport, health_interval_s=0.2,
            resilience=ResilienceConfig(max_retries=0),
        ) as server:
            victim = server._shards[0]
            assert _wait_until(lambda: victim.ready.is_set())
            os.kill(victim.process.pid, signal.SIGSTOP)
            try:
                # park requests on the stopped worker so the drain cannot
                # settle on its own
                futs = []
                x = _rand(1, seed=9)
                for _ in range(32):
                    fut = server.submit(x)
                    futs.append(fut)
                    if victim.outstanding >= 4:
                        break
                assert victim.outstanding > 0

                outcome_box = {}

                def remover():
                    outcome_box.update(
                        server.remove_shard(0, drain=True, timeout=60.0)
                    )

                remover_thread = threading.Thread(target=remover)
                remover_thread.start()
                time.sleep(0.3)  # let the drain wait begin
            finally:
                os.kill(victim.process.pid, signal.SIGKILL)
            remover_thread.join(timeout=30)
            assert not remover_thread.is_alive(), "removal hung on a dead shard"
            # every future resolves: results (other shard) or typed errors
            outcomes = []
            for fut in futs:
                try:
                    fut.result(timeout=60)
                    outcomes.append("ok")
                except ShardCrashedError:
                    outcomes.append("crashed")
            assert "crashed" in outcomes  # the parked ones failed typed
            stats = server.cluster_stats
            assert 0 not in [e["shard"] for e in stats["shards"]]  # no respawn
            assert stats["respawns"] == 0
            assert "shard_removed" in server.events.kinds()


# ----------------------------------------------------------------------
# Shard-list file watcher
# ----------------------------------------------------------------------
class TestShardFile:
    def test_parse_entries_comments_dedupe(self):
        text = (
            "# capacity plan\n"
            "local\n"
            "local  # second local worker\n"
            "\n"
            "10.0.0.5:7070\n"
            "10.0.0.5:7070\n"  # duplicate address: one shard per worker
        )
        assert parse_shard_file(text) == ["local", "local", "10.0.0.5:7070"]

    def test_parse_names_bad_line(self):
        with pytest.raises(ValueError, match="plan.txt:2"):
            parse_shard_file("local\nnot-an-address\n", name="plan.txt")

    def test_watcher_scales_up_and_down(self, spec, tmp_path):
        path = tmp_path / "shards.txt"
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2) as server:
            watcher = ShardFileWatcher(server, path)
            assert watcher.poll_once() == (0, 0)  # absent file: no opinion
            path.write_text("local\nlocal\nlocal\n")
            assert watcher.poll_once() == (2, 0)
            assert len(server.cluster_stats["shards"]) == 3
            assert watcher.poll_once() == (0, 0)  # unchanged: no churn
            path.write_text("local\n")
            assert watcher.poll_once() == (0, 2)
            assert len(server.cluster_stats["shards"]) == 1
            # the founding shard survives scale-down (newest-first removal)
            assert [e["shard"] for e in server.cluster_stats["shards"]] == [0]

    def test_watcher_thread_applies_file_changes(self, spec, tmp_path):
        path = tmp_path / "shards.txt"
        path.write_text("local\nlocal\n")
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2) as server:
            watcher = ShardFileWatcher(server, path, poll_interval_s=0.05).start()
            try:
                assert _wait_until(
                    lambda: len(server.cluster_stats["shards"]) == 2, timeout=30.0
                )
            finally:
                watcher.close()

    def test_watcher_refusal_is_reported_not_raised(self, spec, tmp_path):
        path = tmp_path / "shards.txt"
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2) as server:
            watcher = ShardFileWatcher(server, path)
            path.write_text("# scale to zero\n")
            assert watcher.poll_once() == (0, 0)  # refused: last routable shard
            assert len(server.cluster_stats["shards"]) == 1
            errors = [e for e in server.events.tail() if e["kind"] == "shard_file_error"]
            assert errors and "last routable" in errors[-1]["error"]

    def test_watcher_bad_file_keeps_membership(self, spec, tmp_path):
        path = tmp_path / "shards.txt"
        with ShardedServer(spec, num_shards=1, health_interval_s=0.2) as server:
            watcher = ShardFileWatcher(server, path)
            path.write_text("garbage line\n")
            assert watcher.poll_once() == (0, 0)
            assert len(server.cluster_stats["shards"]) == 1
            assert "shard_file_error" in server.events.kinds()


# ----------------------------------------------------------------------
# Admin POST routes
# ----------------------------------------------------------------------
class TestAdminMembershipRoutes:
    def _post(self, port, path, body=None):
        data = json.dumps(body).encode() if body is not None else b""
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=data, method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def test_add_and_remove_over_http(self, spec, local_session):
        x = _rand(2, seed=5)
        expected = local_session.run(x)
        with ShardedServer(
            spec, num_shards=1, health_interval_s=0.2,
            telemetry=TelemetryConfig(metrics_port=0),
        ) as server:
            port = server.metrics_port
            status, payload = self._post(port, "/shards/add")
            assert status == 200 and payload["shard"] == 1
            assert len(server.cluster_stats["shards"]) == 2
            np.testing.assert_allclose(server.run(x), expected, rtol=1e-4, atol=1e-5)

            status, payload = self._post(port, "/shards/1/remove", {"timeout": 30})
            assert status == 200 and payload["shard"] == 1 and payload["drained"]
            assert [e["shard"] for e in server.cluster_stats["shards"]] == [0]

            # the generation gauge made it to /metrics
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30
            ) as resp:
                text = resp.read().decode()
            assert "cluster_membership_generation 2" in text

    def test_error_statuses(self, spec):
        with ShardedServer(
            spec, num_shards=1, health_interval_s=0.2,
            telemetry=TelemetryConfig(metrics_port=0),
        ) as server:
            port = server.metrics_port
            status, payload = self._post(port, "/shards/9/remove")
            assert status == 404 and "no shard with index 9" in payload["error"]
            status, payload = self._post(port, "/shards/0/remove")
            assert status == 409 and "last routable" in payload["error"]
            status, payload = self._post(port, "/shards/nope")
            assert status == 404 and "routes" in payload
            # body must be a JSON object when present
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/shards/add", data=b"[1,2]", method="POST"
            )
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    status = resp.status
            except urllib.error.HTTPError as err:
                status = err.code
            assert status == 400
            assert len(server.cluster_stats["shards"]) == 1
