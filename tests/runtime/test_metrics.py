"""Shared latency reservoir: the one p50/p95 implementation everything
uses (worker serving stats, the cluster router's end-to-end view)."""

import threading

import numpy as np
import pytest

from repro.runtime.metrics import DEFAULT_RESERVOIR, LatencyReservoir


class TestLatencyReservoir:
    def test_empty_reservoir_reports_zero(self):
        r = LatencyReservoir()
        assert r.count == 0
        assert r.p50_ms == 0.0 and r.p95_ms == 0.0
        assert r.p99_ms == 0.0 and r.mean_ms == 0.0 and r.max_ms == 0.0
        assert r.snapshot() == {
            "count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
            "mean_ms": 0.0, "max_ms": 0.0,
        }

    def test_percentiles_match_numpy_on_partial_fill(self):
        r = LatencyReservoir(capacity=64)
        values = [float(v) for v in range(10)]
        for v in values:
            r.record(v)
        assert r.p50_ms == pytest.approx(np.percentile(values, 50))
        assert r.p95_ms == pytest.approx(np.percentile(values, 95))
        assert r.p99_ms == pytest.approx(np.percentile(values, 99))
        assert r.count == 10

    def test_mean_and_max_track_the_window(self):
        r = LatencyReservoir(capacity=4)
        for v in (1.0, 2.0, 3.0, 10.0):
            r.record(v)
        assert r.mean_ms == pytest.approx(4.0)
        assert r.max_ms == pytest.approx(10.0)
        r.record(100.0)  # evicts 1.0: window is now (2, 3, 10, 100)
        assert r.mean_ms == pytest.approx(28.75)
        assert r.max_ms == pytest.approx(100.0)

    def test_snapshot_is_one_consistent_view(self):
        r = LatencyReservoir(capacity=16)
        for v in range(1, 11):
            r.record(float(v))
        snap = r.snapshot()
        window = [float(v) for v in range(1, 11)]
        assert snap["count"] == 10
        assert snap["p50_ms"] == pytest.approx(np.percentile(window, 50))
        assert snap["p99_ms"] == pytest.approx(np.percentile(window, 99))
        assert snap["mean_ms"] == pytest.approx(np.mean(window))
        assert snap["max_ms"] == pytest.approx(10.0)

    def test_bounded_window_keeps_last_capacity_samples(self):
        cap = 8
        r = LatencyReservoir(capacity=cap)
        for v in range(100):
            r.record(float(v))
        assert r.count == 100 and r.capacity == cap
        window = list(range(100 - cap, 100))  # only the newest cap samples
        assert r.percentile(50) == pytest.approx(np.percentile(window, 50))

    def test_default_capacity_matches_module_constant(self):
        assert LatencyReservoir().capacity == DEFAULT_RESERVOIR

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyReservoir(capacity=0)

    def test_concurrent_records_all_counted(self):
        r = LatencyReservoir(capacity=4096)
        n_threads, per_thread = 8, 500

        def hammer():
            for v in range(per_thread):
                r.record(float(v))

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.count == n_threads * per_thread
        assert r.p95_ms >= r.p50_ms > 0

    def test_serving_and_cluster_share_the_implementation(self):
        """The dedup this module exists for: both stats surfaces hold a
        LatencyReservoir, not private ring copies."""
        from repro.runtime.serving import ServingStats

        stats = ServingStats()
        assert isinstance(stats._latency, LatencyReservoir)
        import inspect

        from repro.runtime import cluster

        src = inspect.getsource(cluster)
        assert "LatencyReservoir" in src
