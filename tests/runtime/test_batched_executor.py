"""Batched compiled execution: equality matrix, kernel cache, arena reuse.

The engine-level contract of the batched rework: for every opt level,
stride, padding, and batch size, ``CompiledExecutor.run`` on a whole
batch equals ``ReferenceExecutor.run`` — and repeated identical layers
compile once while scratch buffers recycle across calls.
"""

import numpy as np
import pytest

from repro.compiler.codegen import KernelCache
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.projections import project_connectivity, project_kernel_pattern
from repro.graph.ir import Graph, Node, OpKind, run_shape_inference
from repro.runtime import BufferArena, CompiledExecutor, ReferenceExecutor

OPT_LEVELS = ["no-opt", "reorder", "lre", "gemm"]


def _pruned_conv(rng, ps, f, c, scale=True):
    """Kaiming-scaled pattern+connectivity pruned weights and assignment."""
    w = rng.standard_normal((f, c, 3, 3)).astype(np.float32)
    if scale:
        w *= np.sqrt(2.0 / (c * 9))
    w, a = project_kernel_pattern(w, ps)
    w, m = project_connectivity(w, max(1, f * c // 2))
    return w, (a * m).astype(np.int32)


def _conv_graph(stride, padding, f=8, c=5, hw=9, seed=0, bias=True, activation="relu"):
    """One pruned conv node wrapped in a graph, plus its assignment."""
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:6])
    w, assignment = _pruned_conv(rng, ps, f, c)
    g = Graph("one-conv")
    g.add(Node("x", OpKind.INPUT, attrs={"shape": (c, hw, hw)}))
    params = {"weight": w}
    if bias:
        params["bias"] = (rng.standard_normal(f) * 0.05).astype(np.float32)
    g.add(
        Node(
            "conv",
            OpKind.CONV2D,
            inputs=["x"],
            attrs={
                "kernel_size": 3,
                "stride": stride,
                "padding": padding,
                "out_channels": f,
                "activation": activation,
            },
            params=params,
        )
    )
    g.outputs = ["conv"]
    run_shape_inference(g)
    return g, ps, {"conv": assignment}


def _stack_graph(seed=0, hw=8, chans=((16, 3), (16, 16), (32, 16), (32, 32))):
    """A VGG-style stack of pruned 3x3 convs (+ maxpool + flatten + linear)."""
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:6])
    g = Graph("stack")
    g.add(Node("x", OpKind.INPUT, attrs={"shape": (chans[0][1], hw, hw)}))
    prev = "x"
    assignments = {}
    for i, (f, c) in enumerate(chans):
        w, a = _pruned_conv(rng, ps, f, c)
        name = f"conv{i}"
        g.add(
            Node(
                name,
                OpKind.CONV2D,
                inputs=[prev],
                attrs={"kernel_size": 3, "stride": 1, "padding": 1, "out_channels": f, "activation": "relu"},
                params={"weight": w, "bias": (rng.standard_normal(f) * 0.05).astype(np.float32)},
            )
        )
        assignments[name] = a
        prev = name
    g.add(Node("pool", OpKind.MAXPOOL, inputs=[prev], attrs={"kernel_size": 2}))
    g.add(Node("flat", OpKind.FLATTEN, inputs=["pool"]))
    feat = chans[-1][0] * (hw // 2) ** 2
    g.add(
        Node(
            "fc",
            OpKind.LINEAR,
            inputs=["flat"],
            attrs={"out_features": 10},
            params={
                "weight": (rng.standard_normal((10, feat)) * 0.02).astype(np.float32),
                "bias": np.zeros(10, np.float32),
            },
        )
    )
    g.outputs = ["fc"]
    run_shape_inference(g)
    return g, ps, assignments


class TestBatchedEquality:
    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("padding", [0, 1])
    @pytest.mark.parametrize("batch", [1, 4, 7])
    def test_compiled_equals_reference(self, opt_level, stride, padding, batch):
        g, ps, assignments = _conv_graph(stride, padding, seed=stride * 10 + padding)
        x = np.random.default_rng(99).standard_normal((batch, 5, 9, 9)).astype(np.float32)
        expected = ReferenceExecutor(g).run(x)
        got = CompiledExecutor(g, ps, assignments, opt_level).run(x)
        assert got.shape == expected.shape
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_multilayer_stack_matches_reference(self, opt_level):
        g, ps, assignments = _stack_graph()
        x = np.random.default_rng(7).standard_normal((4, 3, 8, 8)).astype(np.float32)
        expected = ReferenceExecutor(g).run(x)
        got = CompiledExecutor(g, ps, assignments, opt_level).run(x)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)

    def test_no_bias_no_activation(self):
        g, ps, assignments = _conv_graph(1, 1, bias=False, activation=None)
        x = np.random.default_rng(3).standard_normal((4, 5, 9, 9)).astype(np.float32)
        expected = ReferenceExecutor(g).run(x)
        got = CompiledExecutor(g, ps, assignments).run(x)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)

    def test_repeated_runs_are_stable(self):
        """Arena reuse across calls must not change results."""
        g, ps, assignments = _stack_graph()
        ex = CompiledExecutor(g, ps, assignments)
        rng = np.random.default_rng(11)
        for batch in (2, 5, 2, 5):
            x = rng.standard_normal((batch, 3, 8, 8)).astype(np.float32)
            expected = ReferenceExecutor(g).run(x)
            np.testing.assert_allclose(ex.run(x), expected, rtol=1e-4, atol=1e-4)
        assert ex.arena.reuses > 0

    def test_view_aliased_buffers_reclaimed(self):
        """conv -> flatten (a view of the conv buffer) -> fc must not leak.

        Per-step retirement skips a buffer while a live view aliases it;
        the end-of-run reclaim has to return it to the pool anyway, so
        steady-state serving allocates nothing new after the first call.
        """
        rng = np.random.default_rng(0)
        ps = PatternSet(enumerate_candidate_patterns()[:6])
        w, assignment = _pruned_conv(rng, ps, 8, 3)
        g = Graph("conv-flat")
        g.add(Node("x", OpKind.INPUT, attrs={"shape": (3, 6, 6)}))
        g.add(
            Node(
                "conv",
                OpKind.CONV2D,
                inputs=["x"],
                attrs={"kernel_size": 3, "stride": 1, "padding": 1, "out_channels": 8},
                params={"weight": w},
            )
        )
        g.add(Node("flat", OpKind.FLATTEN, inputs=["conv"]))
        g.add(
            Node(
                "fc",
                OpKind.LINEAR,
                inputs=["flat"],
                attrs={"out_features": 4},
                params={"weight": (rng.standard_normal((4, 8 * 36)) * 0.02).astype(np.float32)},
            )
        )
        g.outputs = ["fc"]
        run_shape_inference(g)
        ex = CompiledExecutor(g, ps, {"conv": assignment})
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        ex.run(x)
        allocs_after_first = ex.arena.allocations
        for _ in range(5):
            ex.run(x)
        assert ex.arena.allocations == allocs_after_first
        assert ex.arena.reuses >= 5

    def test_output_detached_from_arena(self):
        """A returned batch must survive subsequent runs unchanged."""
        g, ps, assignments = _stack_graph()
        ex = CompiledExecutor(g, ps, assignments)
        rng = np.random.default_rng(5)
        x1 = rng.standard_normal((3, 3, 8, 8)).astype(np.float32)
        out1 = ex.run(x1)
        snapshot = out1.copy()
        for _ in range(3):
            ex.run(rng.standard_normal((3, 3, 8, 8)).astype(np.float32))
        np.testing.assert_array_equal(out1, snapshot)


class TestKernelCache:
    def _identical_layer_graph(self, repeats=3):
        """A chain of convs with *identical* weights/bias/attrs (c == f)."""
        rng = np.random.default_rng(0)
        ps = PatternSet(enumerate_candidate_patterns()[:6])
        f = c = 8
        w, assignment = _pruned_conv(rng, ps, f, c)
        bias = (rng.standard_normal(f) * 0.05).astype(np.float32)
        g = Graph("repeated")
        g.add(Node("x", OpKind.INPUT, attrs={"shape": (c, 8, 8)}))
        prev = "x"
        assignments = {}
        for i in range(repeats):
            name = f"conv{i}"
            g.add(
                Node(
                    name,
                    OpKind.CONV2D,
                    inputs=[prev],
                    attrs={"kernel_size": 3, "stride": 1, "padding": 1, "out_channels": f, "activation": "relu"},
                    params={"weight": w.copy(), "bias": bias.copy()},
                )
            )
            assignments[name] = assignment.copy()
            prev = name
        g.outputs = [prev]
        run_shape_inference(g)
        return g, ps, assignments

    def test_identical_layers_compile_once(self):
        g, ps, assignments = self._identical_layer_graph(repeats=3)
        ex = CompiledExecutor(g, ps, assignments)
        assert ex.kernel_cache.misses == 1
        assert ex.kernel_cache.hits == 2
        assert len(ex.kernel_cache) == 1
        # and the shared closure still computes the right thing
        x = np.random.default_rng(1).standard_normal((2, 8, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(
            ex.run(x), ReferenceExecutor(g).run(x), rtol=1e-4, atol=1e-4
        )

    def test_distinct_layers_do_not_collide(self):
        g, ps, assignments = _stack_graph()  # all-distinct weights
        ex = CompiledExecutor(g, ps, assignments)
        assert ex.kernel_cache.hits == 0
        assert ex.kernel_cache.misses == len(assignments)

    def test_cache_shared_across_executors(self):
        g, ps, assignments = self._identical_layer_graph(repeats=2)
        cache = KernelCache()
        CompiledExecutor(g, ps, assignments, kernel_cache=cache)
        CompiledExecutor(g, ps, assignments, kernel_cache=cache)
        assert cache.misses == 1
        assert cache.hits == 3

    def test_opt_level_part_of_key(self):
        g, ps, assignments = self._identical_layer_graph(repeats=1)
        cache = KernelCache()
        CompiledExecutor(g, ps, assignments, "lre", kernel_cache=cache)
        CompiledExecutor(g, ps, assignments, "gemm", kernel_cache=cache)
        assert cache.misses == 2

    def test_external_arena_accepted(self):
        g, ps, assignments = self._identical_layer_graph(repeats=2)
        arena = BufferArena()
        ex = CompiledExecutor(g, ps, assignments, arena=arena)
        assert ex.arena is arena
        x = np.random.default_rng(2).standard_normal((2, 8, 8, 8)).astype(np.float32)
        ex.run(x)
        assert arena.allocations > 0
