"""Transport protocol unit tests: framing edge cases and backpressure.

The tensor frame codec is the part of the TCP transport that cannot be
allowed to fail quietly: every structurally invalid body must raise
:class:`~repro.runtime.resilience.CorruptedPayloadError` (so the
router's retry machinery handles it), never return wrong numbers, and
never crash the stream with an untyped error.  These tests hit the
codec directly — no sockets — plus the :class:`CreditGate` backpressure
primitive whose semantics must mirror the shm slot ring's exactly.
"""

import threading
import time

import numpy as np
import pytest

from repro.runtime.resilience import CorruptedPayloadError
from repro.runtime.transport import (
    FRAME_HEADER,
    FRAME_TENSOR,
    MAX_FRAME_BYTES,
    MAX_MODEL_ID_BYTES,
    CreditGate,
    pack_bundle_payload,
    pack_control_frame,
    pack_tensor_frame,
    tensor_frame_meta,
    tensor_frame_req_id,
    unpack_control_body,
    unpack_tensor_frame,
    verify_bundle_payload,
)


def _body(frame: bytes) -> bytes:
    """Strip the 5-byte (length, type) header off a packed frame."""
    length, ftype = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
    body = frame[FRAME_HEADER.size:]
    assert len(body) == length
    return body


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestTensorFrameRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int8])
    def test_dtype_roundtrip_bitwise(self, dtype):
        """The dtypes serving actually moves (inputs, logits, quantized
        payloads) must survive the wire bit-for-bit."""
        rng = np.random.default_rng(3)
        if np.issubdtype(dtype, np.floating):
            arr = rng.standard_normal((2, 3, 8, 8)).astype(dtype)
        else:
            arr = rng.integers(-128, 128, size=(2, 3, 8, 8), dtype=dtype)
        req_id, remaining, out, trace_id, model = unpack_tensor_frame(
            _body(pack_tensor_frame(17, arr))
        )
        assert req_id == 17 and remaining is None and trace_id == 0 and model == ""
        assert out.dtype == arr.dtype and out.flags.writeable
        np.testing.assert_array_equal(out, arr)

    def test_deadline_survives_as_remaining_seconds(self):
        arr = np.ones((1, 4), np.float32)
        _, remaining, _, _, _ = unpack_tensor_frame(_body(pack_tensor_frame(0, arr, 0.25)))
        assert remaining == pytest.approx(0.25)
        _, remaining, _, _, _ = unpack_tensor_frame(_body(pack_tensor_frame(0, arr, None)))
        assert remaining is None

    def test_trace_id_rides_the_frame(self):
        """A sampled request's trace id crosses the wire untouched (0 =
        unsampled, the overwhelmingly common case)."""
        arr = np.ones((1, 4), np.float32)
        tid = 0xDEADBEEFCAFEF00D
        req_id, _, _, trace_id, _ = unpack_tensor_frame(
            _body(pack_tensor_frame(3, arr, None, trace_id=tid))
        )
        assert req_id == 3 and trace_id == tid

    def test_model_id_rides_the_frame(self):
        """The model id names which session a multi-tenant worker should
        run; it must survive the wire exactly, including non-ASCII."""
        arr = np.ones((1, 4), np.float32)
        for name in ["alpha", "résnet-50", "m" * MAX_MODEL_ID_BYTES]:
            req_id, _, out, _, model = unpack_tensor_frame(
                _body(pack_tensor_frame(8, arr, model=name))
            )
            assert req_id == 8 and model == name
            np.testing.assert_array_equal(out, arr)
        assert tensor_frame_meta(
            _body(pack_tensor_frame(8, arr, 0.5, model="beta"))
        ) == (8, pytest.approx(0.5), 0, "beta")
        with pytest.raises(ValueError, match="model id"):
            pack_tensor_frame(0, arr, model="x" * (MAX_MODEL_ID_BYTES + 1))

    def test_meta_peeks_without_verifying(self):
        """A worker must be able to attribute a corrupt frame to its
        request id without decoding the (unverifiable) payload."""
        frame = pack_tensor_frame(99, np.ones((2, 2), np.float32), 1.5, trace_id=42)
        body = bytearray(_body(frame))
        body[-1] ^= 0xFF  # corrupt the payload
        assert tensor_frame_meta(bytes(body)) == (99, pytest.approx(1.5), 42, "")
        assert tensor_frame_req_id(bytes(body)) == 99
        with pytest.raises(CorruptedPayloadError, match="checksum"):
            unpack_tensor_frame(bytes(body))
        assert tensor_frame_meta(b"\x00" * 8) is None  # prefix cut short
        assert tensor_frame_meta(b"\x00" * 16) is None  # still short of req+trace+deadline
        assert tensor_frame_req_id(b"\x00\x01") is None

    def test_noncontiguous_input_is_framed_contiguously(self):
        arr = np.arange(64, dtype=np.float32).reshape(8, 8)[:, ::2]
        assert not arr.flags.c_contiguous
        _, _, out, _, _ = unpack_tensor_frame(_body(pack_tensor_frame(1, arr)))
        np.testing.assert_array_equal(out, arr)

    def test_control_frame_roundtrip(self):
        msg = ("err", 12, "deadline", "over budget")
        assert unpack_control_body(_body(pack_control_frame(msg))) == msg


# ----------------------------------------------------------------------
# Rejections (the satellite cases: zero-size, oversize, truncation)
# ----------------------------------------------------------------------
class TestFramingRejections:
    def test_zero_size_batch_refused_at_pack(self):
        """An empty batch can't produce a row per sample: refuse it at
        the framing boundary with a ValueError, not three processes
        later with a shape error."""
        with pytest.raises(ValueError, match="at least one sample"):
            pack_tensor_frame(0, np.empty((0, 3, 8, 8), np.float32))
        with pytest.raises(ValueError, match="zero-size"):
            pack_tensor_frame(0, np.empty((4, 0, 8, 8), np.float32))

    def test_zero_size_payload_refused_at_unpack(self):
        """A frame *claiming* zero size on the wire is corruption: pack
        never produces one."""
        frame = pack_tensor_frame(5, np.ones((2, 2), np.float32))
        body = bytearray(_body(frame))
        # zero out the dims (offset 30 = 8 req_id + 8 trace_id + 8 deadline
        # + 4 crc + 1 ndim + 1 empty-model length byte)
        body[30:38] = b"\x00" * 8
        with pytest.raises(CorruptedPayloadError, match="zero-size"):
            unpack_tensor_frame(bytes(body))

    def test_oversize_rank_refused_both_ways(self):
        with pytest.raises(ValueError, match="rank"):
            pack_tensor_frame(0, np.ones((1,) * 17, np.float32))
        frame = pack_tensor_frame(0, np.ones((2, 2), np.float32))
        body = bytearray(_body(frame))
        body[28] = 200  # ndim byte
        with pytest.raises(CorruptedPayloadError, match="rank"):
            unpack_tensor_frame(bytes(body))

    def test_larger_than_max_frame_refused(self):
        """Tensors past the frame bound raise instead of desynchronizing
        the stream (the router separately sizes requests to slot_bytes,
        far below this)."""

        class _HugeFake(np.ndarray):
            pass

        # don't allocate 1 GiB for real: check the bound arithmetic via a
        # modest array and the documented constant
        arr = np.ones((2, 2), np.float32)
        assert len(pack_tensor_frame(0, arr)) < MAX_FRAME_BYTES
        # the length prefix itself is validated on the read side too (see
        # read_frame), so a forged giant length can't cause a giant alloc

    @pytest.mark.parametrize(
        "cut",
        [
            4,    # inside the req_id/trace_id/deadline prefix
            26,   # inside the fixed header (prefix truncated)
            34,   # inside the dims
            43,   # inside the dtype string
            -3,   # inside the payload
        ],
    )
    def test_truncated_frame_raises_corrupted(self, cut):
        frame = pack_tensor_frame(7, np.arange(24, dtype=np.float64).reshape(2, 3, 4))
        body = _body(frame)
        with pytest.raises(CorruptedPayloadError, match="truncated|cut short"):
            unpack_tensor_frame(body[:cut])

    def test_payload_length_mismatch_raises(self):
        frame = pack_tensor_frame(7, np.ones((2, 3), np.float32))
        body = _body(frame)
        with pytest.raises(CorruptedPayloadError, match="payload"):
            unpack_tensor_frame(body + b"\x00\x00\x00\x00")  # too long

    def test_invalid_dtype_raises_corrupted(self):
        frame = pack_tensor_frame(7, np.ones(4, np.float32))
        body = bytearray(_body(frame))
        # dtype string starts after prefix(29) + model len(1) + dims(4) + len byte(1)
        body[35:38] = b"\xff\xff\xff"
        with pytest.raises(CorruptedPayloadError, match="dtype|truncated"):
            unpack_tensor_frame(bytes(body))

    def test_flipped_payload_byte_fails_checksum(self):
        frame = pack_tensor_frame(7, np.ones((4, 4), np.float32))
        body = bytearray(_body(frame))
        body[-1] ^= 0x01
        with pytest.raises(CorruptedPayloadError, match="checksum"):
            unpack_tensor_frame(bytes(body))


# ----------------------------------------------------------------------
# Bundle payloads: handshake/hot-load shipping of session bundles
# ----------------------------------------------------------------------
class TestBundlePayload:
    def test_roundtrip(self):
        data = b"\x00npz-bytes" * 100
        assert verify_bundle_payload("alpha", pack_bundle_payload(data)) == data

    def test_truncation_fails_typed_naming_the_model(self):
        """A half-shipped multi-bundle handshake must not half-load: the
        error is typed and says *which* model's bundle was damaged."""
        crc, size, data = pack_bundle_payload(b"x" * 512)
        with pytest.raises(CorruptedPayloadError, match="'beta'.*truncated"):
            verify_bundle_payload("beta", (crc, size, data[:100]))

    def test_bitflip_fails_checksum(self):
        crc, size, data = pack_bundle_payload(b"y" * 512)
        flipped = bytes([data[0] ^ 0x01]) + data[1:]
        with pytest.raises(CorruptedPayloadError, match="'gamma'.*checksum"):
            verify_bundle_payload("gamma", (crc, size, flipped))

    def test_malformed_tuple_fails_typed(self):
        with pytest.raises(CorruptedPayloadError, match="malformed"):
            verify_bundle_payload("delta", ("not", "a-bundle"))


# ----------------------------------------------------------------------
# CreditGate: backpressure matching the shm slot semantics
# ----------------------------------------------------------------------
class TestCreditGate:
    def test_acquire_release_cycle(self):
        gate = CreditGate(2)
        a, b = gate.acquire(0.1), gate.acquire(0.1)
        assert {a, b} == {0, 1}
        assert gate.acquire(timeout=0.01) is None  # full -> timeout, like the ring
        gate.release(a)
        assert gate.acquire(0.1) == a  # LIFO free list, like the ring
        assert gate.free == 0

    def test_double_release_rejected(self):
        gate = CreditGate(1)
        token = gate.acquire(0.1)
        gate.release(token)
        with pytest.raises(ValueError, match="double release"):
            gate.release(token)
        with pytest.raises(ValueError, match="out of range"):
            gate.release(99)

    def test_close_wakes_blocked_acquirer_with_error(self):
        gate = CreditGate(1)
        gate.acquire(0.1)
        errors: list = []

        def blocked():
            try:
                gate.acquire(timeout=5.0)
            except RuntimeError as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)
        gate.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert errors and "closed" in str(errors[0])

    def test_invalid_credit_count(self):
        with pytest.raises(ValueError, match="credits"):
            CreditGate(0)
