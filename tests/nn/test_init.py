"""Weight initialisation statistics."""

import numpy as np
import pytest

from repro.nn import init
from repro.utils.rng import make_rng


class TestKaiming:
    def test_conv_std_matches_fan_in(self):
        shape = (64, 32, 3, 3)
        w = init.kaiming_normal(shape, make_rng(0))
        expected_std = np.sqrt(2.0 / (32 * 9))
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_linear_std(self):
        w = init.kaiming_normal((256, 512), make_rng(1))
        expected_std = np.sqrt(2.0 / 512)
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_zero_mean(self):
        w = init.kaiming_normal((128, 128, 3, 3), make_rng(2))
        assert abs(float(w.mean())) < 0.01

    def test_float32(self):
        assert init.kaiming_normal((4, 4)).dtype == np.float32

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            init.kaiming_normal((4, 4, 4))


class TestXavier:
    def test_bounds(self):
        shape = (64, 64)
        w = init.xavier_uniform(shape, make_rng(3))
        limit = np.sqrt(6.0 / 128)
        assert np.all(np.abs(w) <= limit + 1e-7)

    def test_covers_range(self):
        w = init.xavier_uniform((128, 128), make_rng(4))
        limit = np.sqrt(6.0 / 256)
        assert w.max() > 0.8 * limit
        assert w.min() < -0.8 * limit


class TestConstants:
    def test_zeros_ones(self):
        assert float(init.zeros((3, 3)).sum()) == 0.0
        assert float(init.ones((3, 3)).sum()) == 9.0
