"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8)
        self.bn = nn.BatchNorm2d(3)
        self.scale = Parameter(np.ones(1, dtype=np.float32))

    def forward(self, x):
        return self.fc1(x) * self.scale


class TestRegistration:
    def test_parameters_discovered(self):
        net = TinyNet()
        names = dict(net.named_parameters())
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "scale" in names
        assert "bn.weight" in names

    def test_buffers_discovered(self):
        net = TinyNet()
        buffers = dict(net.named_buffers())
        assert "bn.running_mean" in buffers
        assert "bn.running_var" in buffers

    def test_named_modules_paths(self):
        net = TinyNet()
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "bn" in names

    def test_num_parameters(self):
        net = TinyNet()
        expected = 4 * 8 + 8 + 3 + 3 + 1
        assert net.num_parameters() == expected


class TestModes:
    def test_train_eval_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.bn.training
        net.train()
        assert net.bn.training

    def test_zero_grad(self):
        net = TinyNet()
        for p in net.parameters():
            p.grad = np.ones_like(p.data)
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a = TinyNet()
        b = TinyNet()
        a.scale.data[:] = 5.0
        a.bn.running_mean[:] = 7.0
        b.load_state_dict(a.state_dict())
        assert float(b.scale.data[0]) == 5.0
        assert float(b.bn.running_mean[0]) == 7.0

    def test_state_dict_is_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"][:] = 99.0
        assert float(net.scale.data[0]) == 1.0

    def test_unknown_key_raises(self):
        net = TinyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({"nope": np.zeros(1)})

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"] = np.zeros(3)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestLoss:
    def test_cross_entropy_matches_manual(self):
        from repro.autograd import Tensor

        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]], dtype=np.float32), requires_grad=True)
        labels = np.array([0, 1])
        loss = nn.CrossEntropyLoss()(logits, labels)
        manual = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert abs(loss.item() - manual) < 1e-5

    def test_cross_entropy_gradient_direction(self):
        from repro.autograd import Tensor

        logits = Tensor(np.zeros((1, 3), dtype=np.float32), requires_grad=True)
        loss = nn.CrossEntropyLoss()(logits, np.array([1]))
        loss.backward()
        # Gradient should push label logit up (negative grad) and others down.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_mse(self):
        from repro.autograd import Tensor

        pred = Tensor([[1.0, 2.0]])
        loss = nn.MSELoss()(pred, np.array([[0.0, 0.0]], dtype=np.float32))
        assert abs(loss.item() - 2.5) < 1e-6


class TestFunctional:
    def test_softmax_sums_to_one(self):
        from repro.autograd import Tensor
        from repro.nn.functional import softmax

        out = softmax(Tensor(np.random.default_rng(0).standard_normal((4, 6)).astype(np.float32)))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, atol=1e-5)

    def test_log_softmax_stable_with_large_logits(self):
        from repro.autograd import Tensor
        from repro.nn.functional import log_softmax

        out = log_softmax(Tensor(np.array([[1000.0, 0.0]], dtype=np.float32)))
        assert np.isfinite(out.data).all()

    def test_one_hot(self):
        from repro.nn.functional import one_hot

        oh = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(oh, [[1, 0, 0], [0, 0, 1]])

    def test_accuracy_topk(self):
        from repro.nn.functional import accuracy

        logits = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
        labels = np.array([2, 2])
        assert accuracy(logits, labels, topk=1) == 0.0
        assert accuracy(logits, labels, topk=2) == 1.0
        assert accuracy(logits, labels, topk=3) == 1.0
