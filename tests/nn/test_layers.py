"""Layer semantics: shapes, forward values, train/eval behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.utils.rng import make_rng


def _x(*shape, seed=0):
    return Tensor(make_rng(seed).standard_normal(shape).astype(np.float32))


class TestConv2d:
    def test_output_shape(self):
        layer = nn.Conv2d(3, 8, 3, padding=1)
        assert layer(_x(2, 3, 8, 8)).shape == (2, 8, 8, 8)

    def test_stride_halves(self):
        layer = nn.Conv2d(3, 4, 3, stride=2, padding=1)
        assert layer(_x(1, 3, 8, 8)).shape == (1, 4, 4, 4)

    def test_no_bias(self):
        layer = nn.Conv2d(3, 4, 1, padding=0, bias=False)
        assert layer.bias is None
        assert len(layer._parameters) == 1

    def test_depthwise_groups(self):
        layer = nn.Conv2d(6, 6, 3, padding=1, groups=6)
        assert layer.weight.shape == (6, 1, 3, 3)
        assert layer(_x(1, 6, 5, 5)).shape == (1, 6, 5, 5)

    def test_groups_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(5, 4, 3, groups=2)

    def test_identity_kernel(self):
        layer = nn.Conv2d(1, 1, 1, padding=0, bias=False)
        layer.weight.data[:] = 1.0
        x = _x(1, 1, 3, 3)
        np.testing.assert_allclose(layer(x).data, x.data)


class TestLinear:
    def test_shape_and_bias(self):
        layer = nn.Linear(4, 3)
        assert layer(_x(5, 4)).shape == (5, 3)

    def test_known_values(self):
        layer = nn.Linear(2, 1)
        layer.weight.data[:] = [[1.0, 2.0]]
        layer.bias.data[:] = [0.5]
        out = layer(Tensor([[1.0, 1.0]]))
        np.testing.assert_allclose(out.data, [[3.5]])


class TestActivations:
    def test_relu(self):
        out = nn.ReLU()(Tensor([[-1.0, 2.0]]))
        np.testing.assert_allclose(out.data, [[0.0, 2.0]])

    def test_relu6_clips(self):
        out = nn.ReLU6()(Tensor([[-1.0, 3.0, 9.0]]))
        np.testing.assert_allclose(out.data, [[0.0, 3.0, 6.0]])

    def test_sigmoid_range(self):
        out = nn.Sigmoid()(_x(10))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_tanh_range(self):
        out = nn.Tanh()(_x(10))
        assert np.all(np.abs(out.data) < 1)


class TestPooling:
    def test_maxpool(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = nn.MaxPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avgpool(self):
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        out = nn.AvgPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[1, 1], [1, 1]])

    def test_global_avgpool(self):
        out = nn.GlobalAvgPool2d()(_x(2, 3, 5, 5))
        assert out.shape == (2, 3, 1, 1)

    def test_adaptive_avgpool_exact_divisor(self):
        out = nn.AdaptiveAvgPool2d(2)(_x(1, 2, 8, 8))
        assert out.shape == (1, 2, 2, 2)

    def test_adaptive_avgpool_bad_size_raises(self):
        with pytest.raises(ValueError):
            nn.AdaptiveAvgPool2d(3)(_x(1, 1, 8, 8))


class TestDropout:
    def test_eval_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = _x(4, 4)
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_train_zeroes_some(self):
        layer = nn.Dropout(0.5, rng=make_rng(0))
        out = layer(Tensor(np.ones((100,), dtype=np.float32)))
        assert 10 < int((out.data == 0).sum()) < 90

    def test_inverted_scaling_preserves_mean(self):
        layer = nn.Dropout(0.3, rng=make_rng(1))
        out = layer(Tensor(np.ones((20000,), dtype=np.float32)))
        assert abs(float(out.data.mean()) - 1.0) < 0.05

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestContainers:
    def test_sequential_chains(self):
        seq = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert seq(_x(3, 4)).shape == (3, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2)])
        ml.append(nn.Linear(2, 2))
        assert len(ml) == 2
        assert len(list(ml)) == 2

    def test_flatten_identity(self):
        assert nn.Flatten()(_x(2, 3, 4)).shape == (2, 12)
        x = _x(2, 2)
        assert nn.Identity()(x) is x


class TestBatchNorm:
    def test_train_normalizes_batch(self):
        bn = nn.BatchNorm2d(3)
        x = _x(8, 3, 4, 4, seed=2) * 5 + 3
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        var = out.data.var(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, 0, atol=1e-4)
        np.testing.assert_allclose(var, 1, atol=1e-2)

    def test_running_stats_updated(self):
        bn = nn.BatchNorm2d(2)
        x = _x(4, 2, 3, 3) + 10.0
        bn(x)
        assert np.all(bn.running_mean > 0.5)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        for _ in range(50):
            bn(_x(16, 2, 4, 4, seed=3) + 2.0)
        bn.eval()
        out_a = bn(_x(4, 2, 4, 4, seed=4) + 2.0)
        out_b = bn(_x(4, 2, 4, 4, seed=4) + 2.0)
        np.testing.assert_array_equal(out_a.data, out_b.data)

    def test_non_nchw_raises(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(_x(3, 2))

    def test_gamma_beta_affect_output(self):
        bn = nn.BatchNorm2d(1)
        bn.weight.data[:] = 2.0
        bn.bias.data[:] = 1.0
        out = bn(_x(8, 1, 4, 4, seed=5))
        assert abs(float(out.data.mean()) - 1.0) < 0.05
