"""im2col/col2im properties, including hypothesis round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.im2col import col2im, conv_out_size, im2col, im2col_view


class TestConvOutSize:
    def test_basic(self):
        assert conv_out_size(224, 3, 1, 1) == 224
        assert conv_out_size(5, 3, 2, 1) == 3
        assert conv_out_size(7, 7, 1, 0) == 1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        col, ho, wo = im2col(x, 3, 3, 1, 1)
        assert (ho, wo) == (8, 8)
        assert col.shape == (2, 27, 64)

    def test_values_match_manual_window(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        col, ho, wo = im2col(x, 2, 2, 1, 0)
        # first window is [[0,1],[4,5]]
        np.testing.assert_array_equal(col[0, :, 0], [0, 1, 4, 5])

    def test_view_is_alias(self):
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        view = im2col_view(x, 2, 2, 1)
        x[0, 0, 0, 0] = 7.0
        assert view[0, 0, 0, 0, 0, 0] == 7.0

    def test_conv_equivalence_with_dot(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        col, ho, wo = im2col(x, 3, 3, 1, 1)
        out = (w.reshape(3, -1) @ col[0]).reshape(3, ho, wo)
        # naive direct convolution
        xp = np.pad(x[0], ((0, 0), (1, 1), (1, 1)))
        ref = np.zeros((3, 6, 6), dtype=np.float32)
        for f in range(3):
            for i in range(6):
                for j in range(6):
                    ref[f, i, j] = np.sum(xp[:, i : i + 3, j : j + 3] * w[f])
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


class TestCol2im:
    def test_adjointness(self):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 5, 5))
        col, ho, wo = im2col(x, 3, 3, 2, 1)
        y = rng.standard_normal(col.shape)
        lhs = float((col * y).sum())
        back = col2im(y, (1, 2, 5, 5), 3, 3, 2, 1)
        rhs = float((x * back).sum())
        assert abs(lhs - rhs) < 1e-8


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(4, 10),
    k=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
    c=st.integers(1, 3),
)
def test_im2col_col2im_adjoint_property(h, k, stride, padding, c):
    """Adjoint identity holds for arbitrary geometry (hypothesis)."""
    if h + 2 * padding < k:
        return
    rng = np.random.default_rng(h * 7 + k)
    x = rng.standard_normal((1, c, h, h))
    col, ho, wo = im2col(x, k, k, stride, padding)
    y = rng.standard_normal(col.shape)
    lhs = float((col * y).sum())
    back = col2im(y, (1, c, h, h), k, k, stride, padding)
    rhs = float((x * back).sum())
    assert abs(lhs - rhs) < 1e-6 * max(1.0, abs(lhs))
