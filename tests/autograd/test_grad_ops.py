"""Gradient checks for every autograd op (float64 + finite differences)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.autograd.ops_shape import Concat


def _t(shape, rng, scale=1.0, shift=0.0):
    return Tensor(rng.standard_normal(shape) * scale + shift, requires_grad=True, dtype=np.float64)


@pytest.fixture
def rng64():
    return np.random.default_rng(42)


class TestElementwiseGrads:
    def test_add(self, rng64):
        a, b = _t((3, 4), rng64), _t((3, 4), rng64)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng64):
        a, b = _t((3, 4), rng64), _t((4,), rng64)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub(self, rng64):
        a, b = _t((2, 3), rng64), _t((2, 3), rng64)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_mul(self, rng64):
        a, b = _t((2, 5), rng64), _t((2, 5), rng64)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng64):
        a = _t((3, 3), rng64)
        b = _t((3, 3), rng64, scale=0.2, shift=2.0)  # away from zero
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow(self, rng64):
        a = _t((4,), rng64, scale=0.3, shift=2.0)
        check_gradients(lambda: (a**3.0).sum(), [a])

    def test_exp(self, rng64):
        a = _t((3, 3), rng64, scale=0.5)
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log(self, rng64):
        a = _t((3, 3), rng64, scale=0.2, shift=2.0)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt(self, rng64):
        a = _t((3,), rng64, scale=0.3, shift=2.0)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_tanh(self, rng64):
        a = _t((2, 4), rng64)
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self, rng64):
        a = _t((2, 4), rng64)
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_relu(self, rng64):
        a = _t((5, 5), rng64, shift=0.3)  # avoid kink at 0
        check_gradients(lambda: a.relu().sum(), [a])

    def test_clip(self, rng64):
        a = _t((4, 4), rng64, scale=2.0, shift=0.2)
        check_gradients(lambda: a.clip(-1.0, 1.0).sum(), [a], eps=1e-5)

    def test_abs(self, rng64):
        a = _t((4,), rng64, shift=1.5)  # away from kink
        check_gradients(lambda: a.abs().sum(), [a])


class TestMatmulGrads:
    def test_matmul_2d(self, rng64):
        a, b = _t((3, 4), rng64), _t((4, 2), rng64)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self, rng64):
        a, b = _t((2, 3, 4), rng64), _t((2, 4, 5), rng64)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_linear_fused(self, rng64):
        from repro.autograd.ops_matmul import Linear

        x, w, bias = _t((5, 3), rng64), _t((2, 3), rng64), _t((2,), rng64)
        check_gradients(lambda: Linear.apply(x, w, bias).sum(), [x, w, bias])


class TestReduceGrads:
    def test_sum_all(self, rng64):
        a = _t((3, 4), rng64)
        check_gradients(lambda: (a.sum() ** 2.0), [a])

    def test_sum_axis_keepdims(self, rng64):
        a = _t((3, 4), rng64)
        check_gradients(lambda: (a.sum(axis=1, keepdims=True) ** 2.0).sum(), [a])

    def test_mean_axis_tuple(self, rng64):
        a = _t((2, 3, 4), rng64)
        check_gradients(lambda: (a.mean(axis=(0, 2)) ** 2.0).sum(), [a])

    def test_max(self, rng64):
        a = _t((3, 5), rng64, scale=3.0)  # well-separated maxima
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_var(self, rng64):
        a = _t((4, 4), rng64)
        check_gradients(lambda: a.var(axis=0).sum(), [a])


class TestShapeGrads:
    def test_reshape(self, rng64):
        a = _t((2, 6), rng64)
        check_gradients(lambda: (a.reshape(3, 4) ** 2.0).sum(), [a])

    def test_permute(self, rng64):
        a = _t((2, 3, 4), rng64)
        check_gradients(lambda: (a.permute(2, 0, 1) ** 2.0).sum(), [a])

    def test_slice(self, rng64):
        a = _t((4, 4), rng64)
        check_gradients(lambda: (a[1:3, ::2] ** 2.0).sum(), [a])

    def test_pad2d(self, rng64):
        a = _t((1, 2, 3, 3), rng64)
        check_gradients(lambda: (a.pad2d(1) ** 2.0).sum(), [a])

    def test_broadcast_to(self, rng64):
        a = _t((1, 3), rng64)
        check_gradients(lambda: (a.broadcast_to((4, 3)) ** 2.0).sum(), [a])

    def test_concat(self, rng64):
        a, b = _t((2, 3), rng64), _t((2, 3), rng64)
        check_gradients(lambda: (Concat.apply(a, b, axis=0) ** 2.0).sum(), [a, b])


class TestConvGrads:
    def test_conv2d(self, rng64):
        from repro.autograd.ops_conv import Conv2d

        x = _t((2, 3, 5, 5), rng64)
        w = _t((4, 3, 3, 3), rng64, scale=0.3)
        b = _t((4,), rng64)
        check_gradients(
            lambda: (Conv2d.apply(x, w, b, stride=1, padding=1) ** 2.0).sum(), [x, w, b]
        )

    def test_conv2d_strided(self, rng64):
        from repro.autograd.ops_conv import Conv2d

        x = _t((1, 2, 7, 7), rng64)
        w = _t((3, 2, 3, 3), rng64, scale=0.3)
        check_gradients(lambda: (Conv2d.apply(x, w, stride=2, padding=1) ** 2.0).sum(), [x, w])

    def test_conv2d_grouped(self, rng64):
        from repro.autograd.ops_conv import Conv2d

        x = _t((2, 4, 5, 5), rng64)
        w = _t((4, 1, 3, 3), rng64, scale=0.3)  # depthwise
        check_gradients(lambda: (Conv2d.apply(x, w, stride=1, padding=1, groups=4) ** 2.0).sum(), [x, w])

    def test_conv2d_1x1(self, rng64):
        from repro.autograd.ops_conv import Conv2d

        x = _t((2, 3, 4, 4), rng64)
        w = _t((5, 3, 1, 1), rng64, scale=0.3)
        check_gradients(lambda: (Conv2d.apply(x, w, stride=1, padding=0) ** 2.0).sum(), [x, w])

    def test_maxpool(self, rng64):
        from repro.autograd.ops_conv import MaxPool2d

        x = _t((2, 2, 6, 6), rng64, scale=3.0)
        check_gradients(lambda: (MaxPool2d.apply(x, kernel=2) ** 2.0).sum(), [x])

    def test_avgpool(self, rng64):
        from repro.autograd.ops_conv import AvgPool2d

        x = _t((2, 2, 6, 6), rng64)
        check_gradients(lambda: (AvgPool2d.apply(x, kernel=2) ** 2.0).sum(), [x])

    def test_maxpool_stride_padding(self, rng64):
        from repro.autograd.ops_conv import MaxPool2d

        x = _t((1, 1, 7, 7), rng64, scale=3.0)
        check_gradients(lambda: (MaxPool2d.apply(x, kernel=3, stride=2, padding=1) ** 2.0).sum(), [x])
