"""Tensor basics: construction, arithmetic, backward semantics."""

import numpy as np
import pytest

from repro.autograd import Tensor, arange, no_grad, ones, randn, tensor, zeros


class TestConstruction:
    def test_default_dtype_is_float32(self):
        t = tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_explicit_dtype_preserved(self):
        t = Tensor([1.0], dtype=np.float64)
        assert t.dtype == np.float64

    def test_zeros_ones_shapes(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(4).shape == (4,)
        assert float(ones(2, 2).data.sum()) == 4.0

    def test_randn_deterministic_with_rng(self):
        from repro.utils.rng import make_rng

        a = randn(3, 3, rng=make_rng(7))
        b = randn(3, 3, rng=make_rng(7))
        np.testing.assert_array_equal(a.data, b.data)

    def test_arange(self):
        np.testing.assert_array_equal(arange(4).data, [0, 1, 2, 3])

    def test_properties(self):
        t = zeros(2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2


class TestArithmetic:
    def test_add_sub_mul_div(self):
        a = tensor([2.0, 4.0])
        b = tensor([1.0, 2.0])
        np.testing.assert_allclose((a + b).data, [3, 6])
        np.testing.assert_allclose((a - b).data, [1, 2])
        np.testing.assert_allclose((a * b).data, [2, 8])
        np.testing.assert_allclose((a / b).data, [2, 2])

    def test_scalar_operands(self):
        a = tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1).data, [2, 3])
        np.testing.assert_allclose((1 + a).data, [2, 3])
        np.testing.assert_allclose((2 - a).data, [1, 0])
        np.testing.assert_allclose((a * 3).data, [3, 6])
        np.testing.assert_allclose((6 / a).data, [6, 3])

    def test_neg_pow(self):
        a = tensor([1.0, -2.0])
        np.testing.assert_allclose((-a).data, [-1, 2])
        np.testing.assert_allclose((a**2).data, [1, 4])

    def test_matmul(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        b = tensor([[1.0], [1.0]])
        np.testing.assert_allclose((a @ b).data, [[3], [7]])

    def test_broadcasting_add(self):
        a = tensor(np.ones((2, 3)))
        b = tensor(np.ones(3))
        assert (a + b).shape == (2, 3)


class TestBackward:
    def test_simple_chain(self):
        x = tensor([3.0], requires_grad=True)
        y = x * x + 2 * x
        y.backward()
        np.testing.assert_allclose(x.grad, [8.0])  # 2x + 2

    def test_grad_accumulates_across_backward_calls(self):
        x = tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad_resets(self):
        x = tensor([1.0], requires_grad=True)
        (x * 3).backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_subexpression_sums_gradients(self):
        x = tensor([2.0], requires_grad=True)
        y = x * x  # used twice below
        z = y + y
        z.backward()
        np.testing.assert_allclose(x.grad, [8.0])  # d/dx 2x^2

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()

    def test_no_grad_blocks_recording(self):
        x = tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert y._ctx is None
        assert not y.requires_grad

    def test_retain_grad_on_intermediate(self):
        x = tensor([2.0], requires_grad=True)
        y = (x * 3).retain_grad()
        z = y * 2
        z.backward()
        np.testing.assert_allclose(y.grad, [2.0])

    def test_detach_cuts_graph(self):
        x = tensor([2.0], requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad
        z = y * 2
        assert z._ctx is None

    def test_nonscalar_backward_with_seed(self):
        x = tensor([[1.0, 2.0]], requires_grad=True)
        y = x * 3
        y.backward(np.array([[1.0, 10.0]], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [[3.0, 30.0]])

    def test_broadcast_grad_unbroadcasts(self):
        a = tensor(np.ones((2, 3)), requires_grad=True)
        b = tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2, 2, 2])


class TestShapeMethods:
    def test_reshape_flatten(self):
        t = zeros(2, 3, 4)
        assert t.reshape(6, 4).shape == (6, 4)
        assert t.reshape((-1,)).shape == (24,)
        assert t.flatten(1).shape == (2, 12)

    def test_transpose_permute(self):
        t = zeros(2, 3, 4)
        assert t.transpose(0, 2).shape == (4, 3, 2)
        assert t.permute(1, 2, 0).shape == (3, 4, 2)
        assert t.T.shape == (4, 3, 2)

    def test_getitem_backward(self):
        x = tensor([1.0, 2.0, 3.0], requires_grad=True)
        x[1:].sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 1])

    def test_pad2d(self):
        t = zeros(1, 1, 2, 2)
        assert t.pad2d(1).shape == (1, 1, 4, 4)

    def test_item(self):
        assert tensor([5.0]).item() == 5.0
