"""Autograd engine edge cases and error paths."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.engine import Function, is_grad_enabled


class TestGradMode:
    def test_is_grad_enabled_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_exception_restores_grad_mode(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestFunctionContract:
    def test_backward_arity_mismatch_raises(self):
        class Bad(Function):
            def forward(self, a, b):
                return a + b

            def backward(self, grad_out):
                return (grad_out,)  # wrong: two parents

        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        out = Bad.apply(a, b)
        with pytest.raises(RuntimeError, match="grads for"):
            out.backward()

    def test_bad_gradient_shape_raises(self):
        class BadShape(Function):
            def forward(self, a):
                return a * 2

            def backward(self, grad_out):
                return (np.zeros((7,)),)

        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="gradient shape"):
            BadShape.apply(a).backward()

    def test_none_gradient_skips_parent(self):
        class PartialGrad(Function):
            def forward(self, a, b):
                return a + b

            def backward(self, grad_out):
                return grad_out, None

        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        PartialGrad.apply(a, b).backward()
        assert a.grad is not None
        assert b.grad is None


class TestScalarAndDtype:
    def test_zero_dim_loss_backward(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True, dtype=np.float64)
        loss = (a.sum() ** 2.0)
        assert loss.data.shape == ()
        loss.backward()
        np.testing.assert_allclose(a.grad, 24.0)

    def test_float64_preserved_through_ops(self):
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        out = (a * 2).exp().log()
        assert out.dtype == np.float64

    def test_leaf_as_loss(self):
        a = Tensor([2.0], requires_grad=True)
        a.backward()
        np.testing.assert_allclose(a.grad, [1.0])
        a.backward()
        np.testing.assert_allclose(a.grad, [2.0])  # accumulates

    def test_numpy_scalar_operand(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * np.float32(3.0)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0])
