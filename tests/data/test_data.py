"""Synthetic datasets and loader behaviour."""

import numpy as np
import pytest

from repro.data import DataLoader, make_cifar10_like, make_imagenet_like
from repro.data.synthetic import make_synthetic
from repro.utils.rng import make_rng


class TestSynthetic:
    def test_shapes_and_labels(self):
        ds = make_cifar10_like(samples_per_class=5, size=8)
        assert ds.images.shape == (50, 3, 8, 8)
        assert ds.labels.shape == (50,)
        assert ds.num_classes == 10
        assert set(np.unique(ds.labels)) == set(range(10))

    def test_deterministic_by_seed(self):
        a = make_cifar10_like(samples_per_class=3, seed=9)
        b = make_cifar10_like(samples_per_class=3, seed=9)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_cifar10_like(samples_per_class=3, seed=1)
        b = make_cifar10_like(samples_per_class=3, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_imagenet_like_is_bigger(self):
        ds = make_imagenet_like(num_classes=5, samples_per_class=2)
        assert ds.images.shape[2] > 16
        assert ds.num_classes == 5

    def test_split_partitions(self):
        ds = make_cifar10_like(samples_per_class=10)
        train, test = ds.split(0.8)
        assert len(train) + len(test) == len(ds)
        assert len(train) == int(0.8 * len(ds))

    def test_classes_are_separable_by_prototype_distance(self):
        """Nearest-prototype classification must beat chance by a margin —
        otherwise the accuracy experiments have no signal to preserve."""
        ds = make_synthetic(num_classes=5, samples_per_class=20, size=12, seed=3)
        protos = ds.prototypes.reshape(5, -1)
        x = ds.images.reshape(len(ds), -1)
        d = ((x[:, None, :] - protos[None]) ** 2).sum(axis=2)
        acc = float((d.argmin(axis=1) == ds.labels).mean())
        assert acc > 0.5  # chance is 0.2

    def test_getitem(self):
        ds = make_cifar10_like(samples_per_class=2)
        img, label = ds[0]
        assert img.shape == (3, 16, 16)


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ds = make_cifar10_like(samples_per_class=5, size=8)
        loader = DataLoader(ds, batch_size=16)
        seen = sum(len(yb) for _, yb in loader)
        assert seen == len(ds)

    def test_len_matches_iteration(self):
        ds = make_cifar10_like(samples_per_class=5, size=8)
        loader = DataLoader(ds, batch_size=16)
        assert len(loader) == len(list(loader))

    def test_drop_last(self):
        ds = make_cifar10_like(samples_per_class=5, size=8)  # 50 samples
        loader = DataLoader(ds, batch_size=16, drop_last=True)
        sizes = [len(yb) for _, yb in loader]
        assert all(s == 16 for s in sizes)
        assert len(sizes) == 3

    def test_shuffle_deterministic_with_rng(self):
        ds = make_cifar10_like(samples_per_class=4, size=8)
        a = [yb.tolist() for _, yb in DataLoader(ds, 8, shuffle=True, rng=make_rng(3))]
        b = [yb.tolist() for _, yb in DataLoader(ds, 8, shuffle=True, rng=make_rng(3))]
        assert a == b

    def test_shuffle_changes_order(self):
        ds = make_cifar10_like(samples_per_class=4, size=8)
        plain = [yb.tolist() for _, yb in DataLoader(ds, 8)]
        shuffled = [yb.tolist() for _, yb in DataLoader(ds, 8, shuffle=True, rng=make_rng(4))]
        assert plain != shuffled

    def test_invalid_batch_size(self):
        ds = make_cifar10_like(samples_per_class=2, size=8)
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)
