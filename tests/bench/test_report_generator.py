"""EXPERIMENTS.md generator (with a stubbed registry for speed)."""

import pytest

from repro.bench import report as report_mod
from repro.bench.registry import Experiment
from repro.bench.reporting import ResultTable


def _ok_experiment():
    table = ResultTable("stub — works", ["a"])
    table.add(1)
    return table


def _boom_experiment():
    raise RuntimeError("deliberate failure")


class TestGenerate:
    def test_writes_markdown_with_tables(self, tmp_path, monkeypatch):
        stub = {
            "stub1": Experiment("stub1", "works", _ok_experiment, "performance"),
        }
        monkeypatch.setattr(report_mod, "EXPERIMENTS", stub)
        out = tmp_path / "EXP.md"
        text = report_mod.generate(str(out))
        assert out.exists()
        assert "stub — works" in text
        assert "paper vs. measured" in text

    def test_failures_recorded_not_raised(self, tmp_path, monkeypatch):
        stub = {
            "stub1": Experiment("stub1", "works", _ok_experiment, "performance"),
            "boom": Experiment("boom", "fails", _boom_experiment, "performance"),
        }
        monkeypatch.setattr(report_mod, "EXPERIMENTS", stub)
        text = report_mod.generate(str(tmp_path / "EXP.md"))
        assert "deliberate failure" in text
        assert "stub — works" in text
