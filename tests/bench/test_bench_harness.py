"""Bench harness: reporting, registry, and light experiment sanity."""

import pytest

from repro.bench import EXPERIMENTS, ResultTable, get_experiment, list_experiments
from repro.bench import paper


class TestResultTable:
    def test_add_and_render(self):
        t = ResultTable("demo", ["a", "b"])
        t.add(1, 2)
        t.note("caveat")
        text = t.to_text()
        assert "demo" in text and "caveat" in text

    def test_wrong_arity_raises(self):
        t = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_markdown_format(self):
        t = ResultTable("demo", ["x"])
        t.add("v")
        md = t.to_markdown()
        assert md.startswith("### demo")
        assert "| x |" in md

    def test_column_access(self):
        t = ResultTable("demo", ["x", "y"])
        t.add(1, 2)
        t.add(3, 4)
        assert t.column("y") == [2, 4]


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        for exp_id in ("table1", "table2", "table3", "table4", "table5", "table6",
                       "table7", "fig12", "fig13", "fig14a", "fig14b", "fig15",
                       "fig16", "fig17a", "fig17b", "fig18"):
            assert exp_id in EXPERIMENTS

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_listing_sorted(self):
        listed = list_experiments()
        assert listed == sorted(listed)


class TestPaperExpectations:
    def test_within_helper(self):
        assert paper.within(2.0, 1.0, 3.0)
        assert not paper.within(4.0, 1.0, 3.0)
        assert paper.within(3.2, 1.0, 3.0, slack=0.1)

    def test_table6_matches_model_zoo(self):
        from repro.models.vgg import VGG_UNIQUE_LAYERS

        assert paper.TABLE6 == VGG_UNIQUE_LAYERS


class TestLightExperiments:
    """Cheap experiments run inline; heavy ones are benchmark-only."""

    def test_table1(self):
        table = EXPERIMENTS["table1"].run()
        assert len(table.rows) == 11

    def test_table5_sizes_close_to_paper(self):
        table = EXPERIMENTS["table5"].run()
        for row in table.rows:
            measured = float(row[4])
            expected = float(row[5])
            assert abs(measured - expected) / expected < 0.08

    def test_table6_exact(self):
        table = EXPERIMENTS["table6"].run()
        for row in table.rows:
            assert row[1] == row[2]

    def test_fig14a_reorder_groups(self):
        table = EXPERIMENTS["fig14a"].run()
        values = dict(zip(table.column("metric"), zip(table.column("before"), table.column("after"))))
        assert values["sorted into groups"] == ("no", "yes")

    def test_fig14b_reduction_in_paper_range(self):
        table = EXPERIMENTS["fig14b"].run()
        for row in table.rows:
            reduction = float(row[3].rstrip("x"))
            assert 1.5 < reduction < 5.0

    def test_fig16_fkw_much_cheaper(self):
        table = EXPERIMENTS["fig16"].run()
        all_row = table.rows[-1]
        assert all_row[0] == "All"
        for cell in all_row[1:]:
            assert float(cell.rstrip("%")) < 25.0
