"""Model zoo: full-scale specs vs the paper, trainable forward passes."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import (
    build_mobilenet_v2,
    build_resnet,
    build_small_cnn,
    build_vgg,
    get_spec,
    get_trainable,
    list_models,
)
from repro.models.vgg import VGG_UNIQUE_LAYERS, unique_layer_spec


class TestVGGSpec:
    def test_conv_count(self):
        assert get_spec("vgg16").conv_count == 13

    def test_imagenet_size_matches_paper(self):
        assert abs(get_spec("vgg16", "imagenet").size_mb - 553.5) < 2.0

    def test_cifar_size_matches_paper(self):
        assert abs(get_spec("vgg16", "cifar10").size_mb - 61.0) < 2.0

    def test_unique_layer_shapes_match_table6(self):
        for name, shape in VGG_UNIQUE_LAYERS.items():
            assert unique_layer_spec(name).filter_shape == shape

    def test_unknown_unique_layer_raises(self):
        with pytest.raises(KeyError):
            unique_layer_spec("L10")

    def test_feature_map_chain_consistent(self):
        spec = get_spec("vgg16")
        hw = {c.name: (c.in_hw, c.out_hw) for c in spec.convs}
        # last conv block runs at 14x14 per Table 6's L9 position
        assert hw["conv13"][0] == 14

    def test_total_macs_magnitude(self):
        # VGG-16 conv MACs ~ 15.3G on 224x224.
        macs = get_spec("vgg16").conv_macs
        assert 14e9 < macs < 16e9


class TestResNetSpec:
    def test_conv_count_and_layers(self):
        spec = get_spec("resnet50")
        assert spec.total_layers == 50
        # 49 weight convs + 4 downsample projections
        assert spec.conv_count == 53

    def test_size_matches_paper(self):
        assert abs(get_spec("resnet50").size_mb - 102.5) < 3.0

    def test_3x3_subset(self):
        spec = get_spec("resnet50")
        threes = spec.conv_3x3()
        assert all(c.kernel_size == 3 for c in threes)
        assert 10 < len(threes) < 20  # 16 bottleneck 3x3 convs + stem variants


class TestMobileNetSpec:
    def test_size_matches_paper(self):
        assert abs(get_spec("mobilenet_v2").size_mb - 14.2) < 1.0

    def test_depthwise_layers_present(self):
        spec = get_spec("mobilenet_v2")
        dw = [c for c in spec.convs if c.groups > 1]
        assert len(dw) == 17  # one per inverted-residual block

    def test_macs_magnitude(self):
        macs = get_spec("mobilenet_v2").conv_macs
        assert 2e8 < macs < 5e8  # ~300M


class TestRegistry:
    def test_aliases(self):
        assert get_spec("VGG").name == "vgg16"
        assert get_spec("rnt").name == "resnet50"
        assert get_spec("MBNT").name == "mobilenet_v2"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_spec("alexnet")
        with pytest.raises(KeyError):
            get_trainable("alexnet")

    def test_list_models(self):
        assert "vgg16" in list_models()


class TestTrainableForward:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (build_small_cnn, {"channels": (8,), "in_size": 8}),
            (build_vgg, {"in_size": 8, "width_scale": 0.125}),
            (build_resnet, {"width_scale": 0.25, "blocks_per_stage": (1, 1)}),
            (build_mobilenet_v2, {"width_scale": 0.5}),
        ],
    )
    def test_forward_shape(self, builder, kwargs):
        model = builder(num_classes=10, **kwargs)
        x = Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32))
        with no_grad():
            out = model(x)
        assert out.shape == (2, 10)

    def test_vgg_full_depth(self):
        model = build_vgg(in_size=32, depth="full", width_scale=0.125)
        x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
        with no_grad():
            assert model(x).shape == (1, 10)

    def test_vgg_bad_depth_raises(self):
        with pytest.raises(ValueError):
            build_vgg(depth="tiny")

    def test_deterministic_by_seed(self):
        a = build_small_cnn(seed=5)
        b = build_small_cnn(seed=5)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_spec_weight_instantiation(self):
        spec = get_spec("vgg16")
        w = spec.convs[1].make_weights()
        assert w.shape == (64, 64, 3, 3)
        assert w.dtype == np.float32
