"""Sensitivity analysis and non-uniform budget allocation."""

import numpy as np
import pytest

from repro import nn
from repro.core.sensitivity import (
    LayerSensitivity,
    allocate_connectivity,
    apply_connectivity_budgets,
    measure_sensitivity,
)
from repro.data import make_cifar10_like
from repro.models import build_small_cnn


@pytest.fixture
def probe_setup():
    ds = make_cifar10_like(samples_per_class=10, size=8, seed=3)
    model = build_small_cnn(channels=(8, 16), in_size=8, seed=2)
    return model, ds


class TestMeasure:
    def test_probes_every_conv(self, probe_setup):
        model, ds = probe_setup
        sens = measure_sensitivity(model, ds.images, ds.labels, rates=(2.0, 4.0))
        assert len(sens) == 2
        for s in sens:
            assert set(s.accuracy_at_rate) == {2.0, 4.0}

    def test_model_restored_after_probe(self, probe_setup):
        model, ds = probe_setup
        before = {n: m.weight.data.copy() for n, m in model.named_modules() if isinstance(m, nn.Conv2d)}
        measure_sensitivity(model, ds.images, ds.labels, rates=(4.0,))
        for n, m in model.named_modules():
            if isinstance(m, nn.Conv2d):
                np.testing.assert_array_equal(m.weight.data, before[n])


class TestAllocate:
    def _fake_sens(self):
        return [
            LayerSensitivity("a", 100, {2.0: 0.9, 4.0: 0.5}),  # sensitive
            LayerSensitivity("b", 100, {2.0: 0.9, 4.0: 0.89}),  # robust
        ]

    def test_budget_matches_global_rate(self):
        keep = allocate_connectivity(self._fake_sens(), global_rate=4.0)
        assert sum(keep.values()) == 50

    def test_sensitive_layer_keeps_more(self):
        keep = allocate_connectivity(self._fake_sens(), global_rate=4.0)
        assert keep["a"] > keep["b"]

    def test_budgets_within_bounds(self):
        keep = allocate_connectivity(self._fake_sens(), global_rate=1.2)
        for s, k in zip(self._fake_sens(), keep.values()):
            assert 1 <= k <= s.total_kernels

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            allocate_connectivity(self._fake_sens(), global_rate=0.5)


class TestApply:
    def test_masks_enforce_budgets(self, probe_setup):
        model, ds = probe_setup
        sens = measure_sensitivity(model, ds.images, ds.labels, rates=(2.0, 4.0))
        budgets = allocate_connectivity(sens, global_rate=3.0)
        masks = apply_connectivity_budgets(model, budgets)
        for name, m in model.named_modules():
            if name in budgets:
                w = m.weight.data
                energy = (w.reshape(w.shape[0], w.shape[1], -1) ** 2).sum(axis=2)
                assert int((energy > 0).sum()) <= budgets[name]

    def test_global_rate_achieved(self, probe_setup):
        model, ds = probe_setup
        sens = measure_sensitivity(model, ds.images, ds.labels, rates=(2.0, 4.0))
        budgets = allocate_connectivity(sens, global_rate=3.0)
        total = sum(s.total_kernels for s in sens)
        assert abs(sum(budgets.values()) - total / 3.0) <= 2
