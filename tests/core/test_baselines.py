"""Baseline pruners: each must hit its target rate and keep masks exact."""

import numpy as np
import pytest

from repro import nn
from repro.core.baselines import (
    ADMMUnstructuredPruner,
    GrowPrunePruner,
    MagnitudePruner,
    StructuredPruner,
)
from repro.core.metrics import compression_rate


def _mask_rate(model, masks):
    total = sum(m.size for m in masks.values())
    kept = sum(int(m.sum()) for m in masks.values())
    return total / kept


class TestMagnitudePruner:
    def test_reaches_rate(self, small_model, small_loader):
        masks = MagnitudePruner(rate=4.0, steps=2, retrain_epochs=1).prune(small_model, small_loader)
        assert abs(_mask_rate(small_model, masks) - 4.0) < 0.3
        assert abs(compression_rate(small_model) - 4.0) < 0.3

    def test_iterative_steps_monotone(self, small_model, small_loader):
        pruner = MagnitudePruner(rate=8.0, steps=3, retrain_epochs=0)
        masks = pruner.prune(small_model, small_loader)
        assert compression_rate(small_model) > 7.0


class TestGrowPrune:
    def test_final_rate(self, small_model, small_loader):
        pruner = GrowPrunePruner(rate=4.0, rounds=1, retrain_epochs=1)
        masks = pruner.prune(small_model, small_loader)
        assert abs(_mask_rate(small_model, masks) - 4.0) < 0.5

    def test_regrowth_changes_mask(self, small_model, small_loader):
        pruner = GrowPrunePruner(rate=4.0, rounds=1, regrow_fraction=0.2, retrain_epochs=1)
        over_rate = pruner.rate / (1 - pruner.regrow_fraction)
        # Prune hard first, record, then run full pipeline: final mask
        # should not equal the initial over-pruned mask everywhere.
        masks = pruner.prune(small_model, small_loader)
        assert masks  # and no exception; rate checked above


class TestADMMUnstructured:
    def test_reaches_rate(self, small_model, small_loader):
        pruner = ADMMUnstructuredPruner(rate=6.0, iterations=2, epochs_per_iteration=1, retrain_epochs=1)
        masks = pruner.prune(small_model, small_loader)
        assert abs(compression_rate(small_model) - 6.0) < 0.5

    def test_masks_enforced(self, small_model, small_loader):
        pruner = ADMMUnstructuredPruner(rate=4.0, iterations=1, epochs_per_iteration=1, retrain_epochs=1)
        masks = pruner.prune(small_model, small_loader)
        for name, module in small_model.named_modules():
            if name in masks:
                assert np.all(module.weight.data[masks[name] == 0] == 0)


class TestStructured:
    def test_filter_pruning_structure(self, small_model, small_loader):
        pruner = StructuredPruner(rate=2.0, granularity="filter", retrain_epochs=1)
        masks = pruner.prune(small_model, small_loader)
        for name, module in small_model.named_modules():
            if name not in masks:
                continue
            w = module.weight.data
            filter_energy = (w.reshape(w.shape[0], -1) ** 2).sum(axis=1)
            zeroed = int((filter_energy == 0).sum())
            assert zeroed == w.shape[0] - max(1, round(w.shape[0] / 2.0))

    def test_channel_pruning_skips_input_layer(self, small_model, small_loader):
        pruner = StructuredPruner(rate=2.0, granularity="channel", retrain_epochs=1)
        masks = pruner.prune(small_model, small_loader)
        first = next(iter(masks.values()))
        assert first.min() == 1.0  # 3-channel input layer untouched

    def test_bad_granularity(self, small_model, small_loader):
        with pytest.raises(ValueError):
            StructuredPruner(granularity="block").prune(small_model, small_loader)


class TestMetrics:
    def test_compression_rate_dense_is_one(self, small_model):
        assert abs(compression_rate(small_model) - 1.0) < 1e-6

    def test_compression_rate_no_nonzero_raises(self):
        model = nn.Sequential(nn.Conv2d(1, 1, 3))
        model[0].weight.data[:] = 0.0
        with pytest.raises(ValueError):
            compression_rate(model)

    def test_pattern_histogram(self):
        from repro.core.metrics import pattern_histogram

        hist = pattern_histogram(np.array([[0, 1], [1, 2]]))
        assert hist == {0: 1, 1: 2, 2: 1}

    def test_sparsity_report(self, small_model):
        from repro.core.metrics import sparsity_report

        report = sparsity_report(small_model)
        assert len(report) == 2
        assert all(r.weight_rate == 1.0 for r in report)
