"""Pattern algebra: the 56-pattern universe, mining, assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import (
    Pattern,
    PatternSet,
    count_natural_patterns,
    enumerate_candidate_patterns,
    mine_pattern_set,
    natural_pattern_of,
)


class TestPattern:
    def test_mask_shape_and_count(self):
        p = Pattern(3, (4, 0, 1, 2))
        assert p.mask.shape == (3, 3)
        assert p.mask.sum() == 4
        assert p.entries == 4

    def test_positions_sorted(self):
        p = Pattern(3, (4, 0, 2, 1))
        assert p.positions == (0, 1, 2, 4)

    def test_center_detection(self):
        assert Pattern(3, (4, 0, 1, 2)).includes_center()
        assert not Pattern(3, (0, 1, 2, 3)).includes_center()

    def test_bitmask_unique(self):
        universe = enumerate_candidate_patterns()
        assert len({p.bitmask for p in universe}) == 56

    def test_coords(self):
        p = Pattern(3, (0, 4))
        assert p.coords == ((0, 0), (1, 1))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Pattern(3, (9,))

    def test_duplicate_positions_raise(self):
        with pytest.raises(ValueError):
            Pattern(3, (4, 4, 1, 2))

    def test_distortion_plus_retained_is_total(self):
        rng = np.random.default_rng(0)
        k = rng.standard_normal((3, 3))
        p = Pattern(3, (4, 0, 1, 2))
        total = float((k**2).sum())
        assert abs(p.distortion(k) + p.retained_energy(k) - total) < 1e-9


class TestUniverse:
    def test_56_patterns(self):
        assert len(enumerate_candidate_patterns(3, 4)) == 56

    def test_all_include_center(self):
        assert all(p.includes_center() for p in enumerate_candidate_patterns())

    def test_other_kernel_sizes(self):
        # 5x5, 4-entry: C(24,3) = 2024
        assert len(enumerate_candidate_patterns(5, 4)) == 2024


class TestNaturalPattern:
    def test_picks_largest_magnitudes(self):
        k = np.zeros((3, 3), dtype=np.float32)
        k[0, 0] = 5.0
        k[2, 2] = -4.0
        k[0, 2] = 3.0
        k[1, 1] = 0.01  # center, tiny but forced in
        p = natural_pattern_of(k)
        assert set(p.positions) == {0, 2, 4, 8}

    def test_center_always_included_even_if_zero(self):
        k = np.ones((3, 3), dtype=np.float32)
        k[1, 1] = 0.0
        assert natural_pattern_of(k).includes_center()

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            natural_pattern_of(np.zeros((3, 4)))


class TestPatternSet:
    def _set(self, k=6):
        return PatternSet(enumerate_candidate_patterns()[:k])

    def test_ids_one_based(self):
        ps = self._set()
        assert ps.id_of(ps[1]) == 1
        assert ps.id_of(ps[6]) == 6

    def test_bad_id_raises(self):
        ps = self._set()
        with pytest.raises(KeyError):
            ps[0]
        with pytest.raises(KeyError):
            ps[7]

    def test_foreign_pattern_raises(self):
        ps = self._set(6)
        foreign = enumerate_candidate_patterns()[20]
        with pytest.raises(KeyError):
            ps.id_of(foreign)

    def test_duplicates_rejected(self):
        p = enumerate_candidate_patterns()[0]
        with pytest.raises(ValueError):
            PatternSet([p, p])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PatternSet([])

    def test_assign_maximizes_retained_energy(self):
        rng = np.random.default_rng(1)
        ps = self._set(8)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        assignment = ps.assign(w)
        for f in range(4):
            for c in range(3):
                chosen = ps[int(assignment[f, c])].retained_energy(w[f, c])
                best = max(p.retained_energy(w[f, c]) for p in ps)
                assert abs(chosen - best) < 1e-6

    def test_masks_for_matches_patterns(self):
        ps = self._set(4)
        assignment = np.array([[1, 2], [3, 4]], dtype=np.int32)
        masks = ps.masks_for(assignment)
        assert masks.shape == (2, 2, 3, 3)
        np.testing.assert_array_equal(masks[0, 0], ps[1].mask.astype(np.float32))
        np.testing.assert_array_equal(masks[1, 1], ps[4].mask.astype(np.float32))


class TestMining:
    def test_top_k_by_frequency(self):
        # Construct weights where one pattern dominates.
        k = np.zeros((8, 8, 3, 3), dtype=np.float32)
        k[:, :, 1, 1] = 5.0
        k[:, :, 0, 0] = 4.0
        k[:, :, 0, 1] = 3.0
        k[:, :, 0, 2] = 2.0
        ps = mine_pattern_set([k], k=4)
        assert ps[1].positions == (0, 1, 2, 4)

    def test_counts_total_equals_kernels(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((6, 5, 3, 3))
        counts = count_natural_patterns([w])
        assert sum(counts.values()) == 30

    def test_pads_to_k_when_model_tiny(self):
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        ps = mine_pattern_set([w], k=8)
        assert len(ps) == 8

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            mine_pattern_set([], k=8)

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((8, 8, 3, 3))
        a = mine_pattern_set([w], k=8)
        b = mine_pattern_set([w], k=8)
        assert [p.bitmask for p in a] == [p.bitmask for p in b]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 56))
def test_assignment_ids_always_valid(seed, k):
    """Property: assignment ids are always in 1..k for any weights."""
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:k])
    w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
    assignment = ps.assign(w)
    assert assignment.min() >= 1
    assert assignment.max() <= k


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_natural_pattern_is_optimal_4_entry(seed):
    """Property: the natural pattern retains max energy among all 56."""
    rng = np.random.default_rng(seed)
    kernel = rng.standard_normal((3, 3))
    kernel[1, 1] = rng.standard_normal() * 3  # keep the centre relevant
    natural = natural_pattern_of(kernel)
    best = max(enumerate_candidate_patterns(), key=lambda p: p.retained_energy(kernel))
    assert abs(natural.retained_energy(kernel) - best.retained_energy(kernel)) < 1e-9
