"""Extended ADMM framework: constraint satisfaction and convergence."""

import numpy as np
import pytest

from repro import nn
from repro.core.admm import ADMMConfig, ADMMPruner
from repro.core.masking import MaskedRetrainer, apply_masks, extract_masks
from repro.core.metrics import compression_rate, count_nonzero_kernels
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.pruner import PatDNNPruner, PruningConfig


@pytest.fixture
def pattern_set():
    return PatternSet(enumerate_candidate_patterns()[:8])


@pytest.fixture
def fast_config():
    return ADMMConfig(iterations=2, epochs_per_iteration=1, connectivity_rate=2.0, rho=1e-2)


class TestADMMPruner:
    def test_requires_conv_layers(self, pattern_set, fast_config):
        model = nn.Sequential(nn.Linear(4, 2))
        with pytest.raises(ValueError):
            ADMMPruner(model, pattern_set, fast_config)

    def test_layer_states_initialized(self, small_model, pattern_set, fast_config):
        pruner = ADMMPruner(small_model, pattern_set, fast_config)
        assert len(pruner.layers) == 2
        for st in pruner.layers:
            assert st.use_pattern
            assert st.z is not None and st.u is not None
            assert st.y is not None and st.v is not None

    def test_first_layer_uses_gentler_rate(self, small_model, pattern_set):
        cfg = ADMMConfig(connectivity_rate=4.0, first_layer_connectivity_rate=1.5)
        pruner = ADMMPruner(small_model, pattern_set, cfg)
        first, second = pruner.layers
        assert first.keep_kernels > first.module.weight.data.shape[0] * first.module.weight.data.shape[1] / 4.0

    def test_run_returns_report(self, small_model, small_loader, pattern_set, fast_config):
        pruner = ADMMPruner(small_model, pattern_set, fast_config)
        report = pruner.run(small_loader)
        assert len(report.losses) == 2
        assert len(report.pattern_residuals) == 2
        assert all(np.isfinite(l) for l in report.losses)

    def test_hard_masks_satisfy_both_constraints(self, small_model, small_loader, pattern_set, fast_config):
        pruner = ADMMPruner(small_model, pattern_set, fast_config)
        pruner.run(small_loader)
        masks = pruner.hard_masks()
        for st in pruner.layers:
            w = st.module.weight.data
            # pattern constraint: <= 4 nonzeros per kernel
            nz = (w != 0).reshape(w.shape[0], w.shape[1], -1).sum(axis=2)
            assert nz.max() <= pattern_set.entries
            # connectivity constraint: kernel count <= budget
            assert count_nonzero_kernels(w) <= st.keep_kernels
            # masks actually applied
            np.testing.assert_array_equal(w, w * masks[st.name])

    def test_assignments_zero_where_pruned(self, small_model, small_loader, pattern_set, fast_config):
        pruner = ADMMPruner(small_model, pattern_set, fast_config)
        pruner.run(small_loader)
        pruner.hard_masks()
        for st, (name, ids) in zip(pruner.layers, pruner.assignments().items()):
            w = st.module.weight.data
            energy = (w.reshape(w.shape[0], w.shape[1], -1) ** 2).sum(axis=2)
            np.testing.assert_array_equal(ids == 0, energy == 0)

    def test_pattern_only_mode(self, small_model, small_loader, pattern_set):
        cfg = ADMMConfig(iterations=1, epochs_per_iteration=1, connectivity_rate=None)
        pruner = ADMMPruner(small_model, pattern_set, cfg)
        pruner.run(small_loader)
        masks = pruner.hard_masks()
        rate = compression_rate(small_model)
        assert 2.2 < rate < 2.3  # exactly 9/4 for 3x3 4-entry patterns

    def test_residuals_shrink_after_warmup(self, small_loader, pattern_set):
        """With enough subproblem-1 steps, ‖W − Z‖ trends down after the
        initial dual warm-up (the classic ADMM trajectory)."""
        from repro.models import build_small_cnn

        model = build_small_cnn(channels=(8, 16), in_size=8, seed=3)
        cfg = ADMMConfig(
            iterations=6, epochs_per_iteration=4, connectivity_rate=2.0, rho=0.3, lr=3e-3
        )
        pruner = ADMMPruner(model, pattern_set, cfg)
        report = pruner.run(small_loader)
        peak = max(report.pattern_residuals[:3])
        assert report.pattern_residuals[-1] < peak


class TestMasking:
    def test_extract_masks_one_shot(self, small_model, pattern_set):
        masks = extract_masks(small_model, pattern_set, connectivity_rate=2.0)
        assert len(masks) == 2
        for mask in masks.values():
            assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_apply_masks_zeroes(self, small_model, pattern_set):
        masks = extract_masks(small_model, pattern_set, connectivity_rate=2.0)
        apply_masks(small_model, masks)
        for name, module in small_model.named_modules():
            if name in masks:
                assert np.all(module.weight.data[masks[name] == 0] == 0)

    def test_unknown_mask_name_raises(self, small_model):
        with pytest.raises(KeyError):
            MaskedRetrainer(small_model, {"nope": np.ones(1)})

    def test_masked_retraining_preserves_zeros(self, small_model, small_loader, pattern_set):
        masks = extract_masks(small_model, pattern_set, connectivity_rate=2.0)
        retrainer = MaskedRetrainer(small_model, masks)
        losses = retrainer.train(small_loader, epochs=2)
        assert len(losses) == 2
        for name, module in small_model.named_modules():
            if name in masks:
                assert np.all(module.weight.data[masks[name] == 0] == 0)

    def test_masked_retraining_updates_survivors(self, small_model, small_loader, pattern_set):
        masks = extract_masks(small_model, pattern_set, connectivity_rate=2.0)
        apply_masks(small_model, masks)
        before = {n: m.weight.data.copy() for n, m in small_model.named_modules() if n in masks}
        MaskedRetrainer(small_model, masks).train(small_loader, epochs=1)
        changed = any(
            not np.array_equal(before[n], m.weight.data)
            for n, m in small_model.named_modules()
            if n in masks
        )
        assert changed


class TestPatDNNPipeline:
    def test_full_pipeline_compression(self, small_model, small_loader):
        cfg = PruningConfig(num_patterns=8, connectivity_rate=2.0, retrain_epochs=1)
        cfg.admm.iterations = 2
        cfg.admm.epochs_per_iteration = 1
        result = PatDNNPruner(cfg).fit(small_model, small_loader)
        # 9/4 pattern x 2.0 connectivity = 4.5x (first layer slightly less)
        assert 4.0 < result.conv_compression_rate <= 4.6
        assert set(result.masks) == set(result.assignments)

    def test_pipeline_respects_given_pattern_set(self, small_model, small_loader, pattern_set):
        cfg = PruningConfig(num_patterns=8, connectivity_rate=None, retrain_epochs=0)
        cfg.admm.iterations = 1
        cfg.admm.epochs_per_iteration = 1
        result = PatDNNPruner(cfg).fit(small_model, small_loader, pattern_set=pattern_set)
        assert result.pattern_set is pattern_set

    def test_invalid_num_patterns(self):
        with pytest.raises(ValueError):
            PruningConfig(num_patterns=0)
