"""Weight quantization: fp16/int8 round-trips and FKW integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.storage import FKWLayer
from repro.core.quantization import (
    QuantizedFKW,
    dequantize_int8,
    quantize_fp16,
    quantize_int8,
)


class TestFP16:
    def test_small_error(self, rng):
        w = rng.standard_normal((4, 4)).astype(np.float32)
        q, err = quantize_fp16(w)
        assert q.dtype == np.float16
        assert err < 1e-2

    def test_empty(self):
        q, err = quantize_fp16(np.empty((0, 4), dtype=np.float32))
        assert err == 0.0


class TestInt8:
    def test_roundtrip_error_bounded(self, rng):
        w = rng.standard_normal((6, 5, 3, 3)).astype(np.float32)
        q, scales = quantize_int8(w, axis=0)
        restored = dequantize_int8(q, scales, axis=0)
        per_slice_max = np.abs(w).reshape(6, -1).max(axis=1)
        bound = per_slice_max / 127.0 * 0.51  # half-step rounding
        err = np.abs(restored - w).reshape(6, -1).max(axis=1)
        assert np.all(err <= bound + 1e-7)

    def test_range(self, rng):
        w = rng.standard_normal((3, 10)).astype(np.float32) * 100
        q, _ = quantize_int8(w)
        assert q.min() >= -127 and q.max() <= 127

    def test_zero_slice_safe(self):
        w = np.zeros((2, 4), dtype=np.float32)
        q, scales = quantize_int8(w)
        np.testing.assert_array_equal(dequantize_int8(q, scales), w)


class TestQuantizedFKW:
    def test_fp16_dense_close(self, pruned_layer):
        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        qfkw = QuantizedFKW.from_fkw(fkw, "fp16")
        np.testing.assert_allclose(qfkw.to_dense(), w, rtol=1e-2, atol=1e-3)

    def test_int8_dense_close(self, pruned_layer):
        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        qfkw = QuantizedFKW.from_fkw(fkw, "int8")
        scale = np.abs(w).max()
        np.testing.assert_allclose(qfkw.to_dense(), w, atol=scale / 64)

    def test_bytes_shrink(self, pruned_layer):
        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        fp16 = QuantizedFKW.from_fkw(fkw, "fp16")
        int8 = QuantizedFKW.from_fkw(fkw, "int8")
        assert fp16.weight_bytes() == fkw.weights.nbytes // 2
        assert int8.weight_bytes() < fp16.weight_bytes()

    def test_error_accounting(self, pruned_layer):
        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        assert QuantizedFKW.from_fkw(fkw, "fp16").max_error() < 1e-2

    def test_bad_dtype(self, pruned_layer):
        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        with pytest.raises(ValueError):
            QuantizedFKW.from_fkw(fkw, "int4")


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_int8_idempotent_on_requantize(seed):
    """Property: quantize(dequantize(quantize(w))) == quantize(w)."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((3, 8)).astype(np.float32)
    q1, s1 = quantize_int8(w)
    restored = dequantize_int8(q1, s1)
    q2, s2 = quantize_int8(restored)
    np.testing.assert_array_equal(q1, q2)
    np.testing.assert_allclose(s1, s2, rtol=1e-6)
