"""Euclidean projections: correctness, idempotence, optimality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.projections import (
    connectivity_budget,
    project_channels,
    project_connectivity,
    project_filters,
    project_kernel_pattern,
    project_magnitude,
)


@pytest.fixture
def weights(rng):
    return rng.standard_normal((6, 4, 3, 3)).astype(np.float32)


@pytest.fixture
def pattern_set():
    return PatternSet(enumerate_candidate_patterns()[:8])


class TestKernelPatternProjection:
    def test_each_kernel_has_at_most_entries_nonzeros(self, weights, pattern_set):
        projected, _ = project_kernel_pattern(weights, pattern_set)
        nz = (projected != 0).reshape(6, 4, -1).sum(axis=2)
        assert nz.max() <= 4

    def test_idempotent(self, weights, pattern_set):
        p1, a1 = project_kernel_pattern(weights, pattern_set)
        p2, a2 = project_kernel_pattern(p1, pattern_set)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(a1, a2)

    def test_values_preserved_inside_pattern(self, weights, pattern_set):
        projected, assignment = project_kernel_pattern(weights, pattern_set)
        mask = pattern_set.masks_for(assignment)
        np.testing.assert_array_equal(projected, weights * mask)

    def test_projection_minimizes_distance(self, weights, pattern_set):
        """The chosen pattern must beat every other pattern in L2 distance."""
        projected, assignment = project_kernel_pattern(weights, pattern_set)
        chosen_dist = ((weights - projected) ** 2).reshape(6, 4, -1).sum(axis=2)
        for pid in range(1, len(pattern_set) + 1):
            alt_mask = pattern_set[pid].mask.astype(np.float32)
            alt_dist = ((weights - weights * alt_mask) ** 2).reshape(6, 4, -1).sum(axis=2)
            assert np.all(chosen_dist <= alt_dist + 1e-5)


class TestConnectivityProjection:
    def test_keeps_exact_count(self, weights):
        projected, mask = project_connectivity(weights, 10)
        assert mask.sum() == 10
        energy = (projected.reshape(6, 4, -1) ** 2).sum(axis=2)
        assert (energy > 0).sum() == 10

    def test_keeps_largest_norms(self, weights):
        _, mask = project_connectivity(weights, 5)
        norms = np.sqrt((weights.reshape(6, 4, -1) ** 2).sum(axis=2))
        kept = norms[mask]
        dropped = norms[~mask]
        assert kept.min() >= dropped.max() - 1e-6

    def test_bounds_checked(self, weights):
        with pytest.raises(ValueError):
            project_connectivity(weights, 0)
        with pytest.raises(ValueError):
            project_connectivity(weights, 25)

    def test_budget_helper(self):
        assert connectivity_budget((36, 10), 3.6) == 100
        assert connectivity_budget((4, 1), 100.0) == 1
        with pytest.raises(ValueError):
            connectivity_budget((4, 4), 0.5)


class TestStructuredProjections:
    def test_filter_projection_zeroes_whole_filters(self, weights):
        projected, mask = project_filters(weights, 2)
        assert mask.sum() == 2
        for f in range(6):
            if not mask[f]:
                assert np.all(projected[f] == 0)

    def test_channel_projection_zeroes_whole_channels(self, weights):
        projected, mask = project_channels(weights, 2)
        assert mask.sum() == 2
        for c in range(4):
            if not mask[c]:
                assert np.all(projected[:, c] == 0)

    def test_filter_bounds(self, weights):
        with pytest.raises(ValueError):
            project_filters(weights, 0)
        with pytest.raises(ValueError):
            project_channels(weights, 99)


class TestMagnitudeProjection:
    def test_keeps_exact_count(self, weights):
        projected, mask = project_magnitude(weights, 50)
        assert mask.sum() == 50
        assert np.count_nonzero(projected) <= 50

    def test_keeps_largest(self, weights):
        _, mask = project_magnitude(weights, 30)
        kept = np.abs(weights[mask])
        dropped = np.abs(weights[~mask])
        assert kept.min() >= dropped.max() - 1e-6

    def test_bounds(self, weights):
        with pytest.raises(ValueError):
            project_magnitude(weights, 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 23))
def test_connectivity_projection_idempotent(seed, keep):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((4, 6, 3, 3)).astype(np.float32)
    p1, m1 = project_connectivity(w, keep)
    p2, m2 = project_connectivity(p1, keep)
    np.testing.assert_array_equal(p1, p2)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_pattern_projection_never_increases_energy(seed):
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:8])
    w = rng.standard_normal((3, 3, 3, 3)).astype(np.float32)
    projected, _ = project_kernel_pattern(w, ps)
    assert (projected**2).sum() <= (w**2).sum() + 1e-5
