"""Shared fixtures: deterministic RNGs, small datasets, pruned layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.patterns import mine_pattern_set
from repro.core.projections import project_connectivity, project_kernel_pattern
from repro.data import DataLoader, make_cifar10_like
from repro.models import build_small_cnn
from repro.utils.rng import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(1234)


@pytest.fixture
def small_dataset():
    ds = make_cifar10_like(samples_per_class=12, size=8, seed=5)
    return ds.split(0.75)


@pytest.fixture
def small_loader(small_dataset):
    train, _ = small_dataset
    return DataLoader(train, batch_size=16, shuffle=True, rng=make_rng(6))


@pytest.fixture
def small_model():
    return build_small_cnn(channels=(8, 16), in_size=8, seed=3)


@pytest.fixture
def pruned_layer(rng):
    """A pattern+connectivity pruned conv layer: (weights, assignment, set)."""
    w = rng.standard_normal((12, 6, 3, 3)).astype(np.float32)
    pattern_set = mine_pattern_set([w], k=6)
    w, assignment = project_kernel_pattern(w, pattern_set)
    w, keep = project_connectivity(w, 30)
    assignment = assignment * keep
    return w, assignment, pattern_set
