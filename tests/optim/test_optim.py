"""Optimizers and schedulers: convergence and state behaviour."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, CosineLR, StepLR


def _quadratic_steps(optimizer_factory, steps=120):
    """Minimise f(w) = ||w - target||^2; return final distance."""
    w = Parameter(np.array([4.0, -3.0], dtype=np.float32))
    target = np.array([1.0, 2.0], dtype=np.float32)
    opt = optimizer_factory([w])
    for _ in range(steps):
        opt.zero_grad()
        loss = ((w - Tensor(target)) ** 2).sum()
        loss.backward()
        opt.step()
    return float(np.abs(w.data - target).max())


class TestSGD:
    def test_converges_on_quadratic(self):
        assert _quadratic_steps(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_momentum_converges(self):
        assert _quadratic_steps(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=250) < 1e-3

    def test_nesterov_converges(self):
        assert _quadratic_steps(lambda p: SGD(p, lr=0.05, momentum=0.9, nesterov=True)) < 1e-3

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert float(w.data[0]) < 1.0

    def test_nesterov_without_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_skips_none_grads(self):
        w = Parameter(np.ones(2, dtype=np.float32))
        SGD([w], lr=0.1).step()  # no grad set; must not raise
        np.testing.assert_array_equal(w.data, [1, 1])

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert _quadratic_steps(lambda p: Adam(p, lr=0.1), steps=200) < 1e-2

    def test_bias_correction_first_step_magnitude(self):
        w = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([w], lr=0.1)
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # With bias correction the first step is ~lr regardless of grad scale.
        assert abs(abs(float(w.data[0])) - 0.1) < 1e-3

    def test_state_per_parameter(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = Adam([a, b], lr=0.1)
        a.grad = np.ones(1)
        b.grad = np.ones(1)
        opt.step()
        assert len(opt.state) == 2


class TestSchedulers:
    def test_step_lr_decays(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert abs(opt.lr - 0.1) < 1e-9

    def test_cosine_lr_endpoints(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineLR(opt, t_max=10)
        for _ in range(10):
            sched.step()
        assert opt.lr < 1e-6

    def test_cosine_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineLR(opt, t_max=8)
        values = []
        for _ in range(8):
            sched.step()
            values.append(opt.lr)
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
