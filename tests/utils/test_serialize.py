"""Serialization round-trips for models, pruning artifacts, and FKW."""

import numpy as np
import pytest

from repro.compiler.storage import FKWLayer
from repro.models import build_small_cnn
from repro.utils.serialize import (
    load_fkw,
    load_pruning,
    load_session_bundle,
    load_state,
    save_fkw,
    save_pruning,
    save_session_bundle,
    save_state,
)


class TestStateDictRoundtrip:
    def test_roundtrip(self, tmp_path):
        model = build_small_cnn(channels=(8,), in_size=8, seed=1)
        path = tmp_path / "model.npz"
        save_state(path, model.state_dict())
        restored = load_state(path)
        fresh = build_small_cnn(channels=(8,), in_size=8, seed=2)
        fresh.load_state_dict(restored)
        for (na, pa), (nb, pb) in zip(model.named_parameters(), fresh.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_buffers_roundtrip(self, tmp_path):
        model = build_small_cnn(channels=(8,), in_size=8)
        for _, m in model.named_modules():
            if hasattr(m, "running_mean") and isinstance(getattr(m, "running_mean", None), np.ndarray):
                m.running_mean[:] = 3.0
        path = tmp_path / "model.npz"
        save_state(path, model.state_dict())
        state = load_state(path)
        bn_keys = [k for k in state if "running_mean" in k]
        assert bn_keys
        assert all(np.all(state[k] == 3.0) for k in bn_keys)


class TestPruningRoundtrip:
    def test_roundtrip(self, tmp_path, pruned_layer):
        w, assignment, ps = pruned_layer
        path = tmp_path / "pruning.npz"
        save_pruning(path, ps, {"layer0": assignment, "layer1": assignment * 0})
        ps2, assignments = load_pruning(path)
        assert len(ps2) == len(ps)
        assert [p.bitmask for p in ps2] == [p.bitmask for p in ps]
        np.testing.assert_array_equal(assignments["layer0"], assignment)
        np.testing.assert_array_equal(assignments["layer1"], assignment * 0)


class TestSessionBundleRoundtrip:
    def test_compiled_bundle_roundtrip(self, tmp_path, pruned_layer):
        _, assignment, ps = pruned_layer
        model = build_small_cnn(channels=(8,), in_size=8, seed=1)
        path = tmp_path / "bundle.npz"
        assignments = {"features.0": assignment, "features.3": assignment * 0}
        save_session_bundle(path, model.state_dict(), ps, assignments)
        state, ps2, restored = load_session_bundle(path)
        assert [p.bitmask for p in ps2] == [p.bitmask for p in ps]
        # insertion order preserved: the session maps names positionally
        assert list(restored) == list(assignments)
        for name in assignments:
            np.testing.assert_array_equal(restored[name], assignments[name])
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(state[key], value)

    def test_dense_bundle_roundtrip(self, tmp_path):
        model = build_small_cnn(channels=(8,), in_size=8, seed=1)
        path = tmp_path / "dense.npz"
        save_session_bundle(path, model.state_dict())
        state, ps, assignments = load_session_bundle(path)
        assert ps is None and assignments == {}
        assert set(state) == set(model.state_dict())

    def test_partial_artifacts_rejected(self, tmp_path, pruned_layer):
        _, assignment, ps = pruned_layer
        state = build_small_cnn(channels=(8,), in_size=8).state_dict()
        with pytest.raises(ValueError, match="together"):
            save_session_bundle(tmp_path / "x.npz", state, ps, None)
        with pytest.raises(ValueError, match="together"):
            save_session_bundle(tmp_path / "x.npz", state, None, {"a": assignment})


class TestFKWRoundtrip:
    def test_roundtrip_dense_equal(self, tmp_path, pruned_layer):
        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        path = tmp_path / "layer.npz"
        save_fkw(path, fkw)
        restored = load_fkw(path)
        np.testing.assert_array_equal(restored.to_dense(), fkw.to_dense())
        assert restored.entries == fkw.entries
        assert restored.num_kernels == fkw.num_kernels

    def test_restored_layer_executes(self, tmp_path, pruned_layer, rng):
        from repro.compiler.codegen import generate_kernel

        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        path = tmp_path / "layer.npz"
        save_fkw(path, fkw)
        restored = load_fkw(path)
        x = rng.standard_normal((w.shape[1], 8, 8)).astype(np.float32)
        np.testing.assert_allclose(
            generate_kernel(restored)(x), generate_kernel(fkw)(x), rtol=1e-6, atol=1e-6
        )
