"""Serialization round-trips for models, pruning artifacts, and FKW."""

import numpy as np
import pytest

from repro.compiler.storage import FKWLayer
from repro.models import build_small_cnn
from repro.utils.serialize import (
    load_fkw,
    load_pruning,
    load_state,
    save_fkw,
    save_pruning,
    save_state,
)


class TestStateDictRoundtrip:
    def test_roundtrip(self, tmp_path):
        model = build_small_cnn(channels=(8,), in_size=8, seed=1)
        path = tmp_path / "model.npz"
        save_state(path, model.state_dict())
        restored = load_state(path)
        fresh = build_small_cnn(channels=(8,), in_size=8, seed=2)
        fresh.load_state_dict(restored)
        for (na, pa), (nb, pb) in zip(model.named_parameters(), fresh.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_buffers_roundtrip(self, tmp_path):
        model = build_small_cnn(channels=(8,), in_size=8)
        for _, m in model.named_modules():
            if hasattr(m, "running_mean") and isinstance(getattr(m, "running_mean", None), np.ndarray):
                m.running_mean[:] = 3.0
        path = tmp_path / "model.npz"
        save_state(path, model.state_dict())
        state = load_state(path)
        bn_keys = [k for k in state if "running_mean" in k]
        assert bn_keys
        assert all(np.all(state[k] == 3.0) for k in bn_keys)


class TestPruningRoundtrip:
    def test_roundtrip(self, tmp_path, pruned_layer):
        w, assignment, ps = pruned_layer
        path = tmp_path / "pruning.npz"
        save_pruning(path, ps, {"layer0": assignment, "layer1": assignment * 0})
        ps2, assignments = load_pruning(path)
        assert len(ps2) == len(ps)
        assert [p.bitmask for p in ps2] == [p.bitmask for p in ps]
        np.testing.assert_array_equal(assignments["layer0"], assignment)
        np.testing.assert_array_equal(assignments["layer1"], assignment * 0)


class TestFKWRoundtrip:
    def test_roundtrip_dense_equal(self, tmp_path, pruned_layer):
        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        path = tmp_path / "layer.npz"
        save_fkw(path, fkw)
        restored = load_fkw(path)
        np.testing.assert_array_equal(restored.to_dense(), fkw.to_dense())
        assert restored.entries == fkw.entries
        assert restored.num_kernels == fkw.num_kernels

    def test_restored_layer_executes(self, tmp_path, pruned_layer, rng):
        from repro.compiler.codegen import generate_kernel

        w, assignment, ps = pruned_layer
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        path = tmp_path / "layer.npz"
        save_fkw(path, fkw)
        restored = load_fkw(path)
        x = rng.standard_normal((w.shape[1], 8, 8)).astype(np.float32)
        np.testing.assert_allclose(
            generate_kernel(restored)(x), generate_kernel(fkw)(x), rtol=1e-6, atol=1e-6
        )
