"""Whole-compiled-model deployment round-trip."""

import numpy as np
import pytest

from repro.compiler.codegen import generate_kernel
from repro.compiler.compile import OptLevel, compile_model
from repro.core.patterns import mine_pattern_set
from repro.hardware import SNAPDRAGON_855
from repro.hardware.cost_model import ConvCostModel
from repro.models.spec import ConvSpec, ModelSpec
from repro.utils.serialize import load_deployment, save_deployment


@pytest.fixture(scope="module")
def compiled_tiny():
    spec = ModelSpec(
        "tiny",
        "synthetic",
        [
            ConvSpec("c1", 3, 8, 3, padding=1, in_hw=12),
            ConvSpec("c2", 8, 12, 3, padding=1, in_hw=12),
        ],
        total_layers=2,
    )
    ps = mine_pattern_set([spec.convs[1].make_weights()], k=6)
    cm = ConvCostModel(SNAPDRAGON_855, "cpu", utilization=0.4)
    return compile_model(spec, ps, cm, connectivity_rate=2.0, opt_level=OptLevel.LRE)


class TestDeploymentRoundtrip:
    def test_metadata_preserved(self, compiled_tiny, tmp_path):
        path = tmp_path / "model.npz"
        save_deployment(path, compiled_tiny)
        meta, layers = load_deployment(path)
        assert meta["name"] == "tiny-synthetic"
        assert meta["device_unit"] == "cpu"
        assert len(layers) == 2
        assert meta["layers"][0]["lr"]["pattern"]["layout"] == "FKW"

    def test_weights_bit_exact(self, compiled_tiny, tmp_path):
        path = tmp_path / "model.npz"
        save_deployment(path, compiled_tiny)
        _, layers = load_deployment(path)
        for original, restored in zip(compiled_tiny.layers, layers):
            np.testing.assert_array_equal(restored.to_dense(), original.fkw.to_dense())

    def test_restored_kernels_execute_identically(self, compiled_tiny, tmp_path):
        rng = np.random.default_rng(0)
        path = tmp_path / "model.npz"
        save_deployment(path, compiled_tiny)
        meta, layers = load_deployment(path)
        for original, restored, layer_meta in zip(compiled_tiny.layers, layers, meta["layers"]):
            x = rng.standard_normal((original.spec.in_channels, 12, 12)).astype(np.float32)
            ref = original.kernel()(x)
            fn = generate_kernel(restored, layer_meta["stride_attr"], layer_meta["padding"], "lre")
            np.testing.assert_allclose(fn(x), ref, rtol=1e-5, atol=1e-5)

    def test_pattern_sets_deduplicated(self, compiled_tiny, tmp_path):
        path = tmp_path / "model.npz"
        save_deployment(path, compiled_tiny)
        meta, _ = load_deployment(path)
        assert len(meta["pattern_sets"]) == 1  # both layers share one set
