"""Utility helpers: rng streams, formatting, logging facade."""

import logging

import numpy as np
import pytest

from repro.utils import (
    get_logger,
    human_bytes,
    human_time,
    make_rng,
    prod,
    sizeof_fmt_table,
    spawn,
)


class TestRng:
    def test_default_seed_reproducible(self):
        assert make_rng().integers(0, 1000) == make_rng().integers(0, 1000)

    def test_explicit_seed(self):
        a = make_rng(42).standard_normal(4)
        b = make_rng(42).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_independent_streams(self):
        children = spawn(make_rng(1), 3)
        draws = [c.integers(0, 2**31) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_reproducible(self):
        a = [c.integers(0, 100) for c in spawn(make_rng(2), 2)]
        b = [c.integers(0, 100) for c in spawn(make_rng(2), 2)]
        assert a == b


class TestFormatting:
    def test_prod(self):
        assert prod([2, 3, 4]) == 24
        assert prod([]) == 1

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KiB"
        assert "MiB" in human_bytes(5 * 1024**2)
        assert "GiB" in human_bytes(3 * 1024**3)

    def test_human_time(self):
        assert "us" in human_time(5e-6)
        assert "ms" in human_time(0.05)
        assert human_time(2.0) == "2.00 s"
        assert "min" in human_time(300)

    def test_table_alignment(self):
        text = sizeof_fmt_table([[1, "long-value"]], ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("-")


class TestLogger:
    def test_namespaced(self):
        log = get_logger("mytool")
        assert log.name == "repro.mytool"

    def test_repro_prefix_kept(self):
        log = get_logger("repro.core.admm")
        assert log.name == "repro.core.admm"

    def test_handler_installed_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
