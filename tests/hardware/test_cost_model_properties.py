"""Hypothesis property tests on the cost model's global invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import SNAPDRAGON_855
from repro.hardware.cost_model import ConvCostModel, ConvWorkload, SchedParams
from repro.models.spec import ConvSpec

_spec_strategy = st.builds(
    ConvSpec,
    name=st.just("prop"),
    in_channels=st.sampled_from([8, 16, 32, 64]),
    out_channels=st.sampled_from([8, 16, 32, 64]),
    kernel_size=st.sampled_from([1, 3]),
    stride=st.sampled_from([1, 2]),
    padding=st.just(1),
    in_hw=st.sampled_from([8, 14, 28]),
)


@settings(max_examples=40, deadline=None)
@given(_spec_strategy, st.booleans())
def test_costs_always_positive_and_finite(spec, fp16):
    cm = ConvCostModel(SNAPDRAGON_855, "gpu" if fp16 else "cpu", utilization=0.3, fp16=fp16)
    cost = cm.estimate(ConvWorkload.dense(spec))
    assert np.isfinite(cost.total_ms)
    assert cost.total_ms > 0
    assert cost.gflops >= 0
    assert cost.total_ms >= cost.overhead_ms


@settings(max_examples=40, deadline=None)
@given(_spec_strategy, st.integers(1, 10))
def test_sparser_workload_never_slower(spec, divisor):
    """Fewer non-zero weights (same structure) must never cost more."""
    cm = ConvCostModel(SNAPDRAGON_855, "cpu", utilization=0.4)
    full = ConvWorkload(
        spec=spec,
        nnz_weights=spec.weight_count,
        nonzero_kernels=spec.kernel_count,
        sparse=True,
        register_loads=spec.weight_count * 2,
    )
    sparse = ConvWorkload(
        spec=spec,
        nnz_weights=max(1, spec.weight_count // divisor),
        nonzero_kernels=max(1, spec.kernel_count // divisor),
        sparse=True,
        register_loads=max(1, spec.weight_count * 2 // divisor),
    )
    assert cm.estimate(sparse).total_ms <= cm.estimate(full).total_ms + 1e-9


@settings(max_examples=30, deadline=None)
@given(_spec_strategy)
def test_higher_utilization_never_slower(spec):
    lo = ConvCostModel(SNAPDRAGON_855, "cpu", utilization=0.1)
    hi = ConvCostModel(SNAPDRAGON_855, "cpu", utilization=0.5)
    work = ConvWorkload.dense(spec)
    assert hi.estimate(work).total_ms <= lo.estimate(work).total_ms + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    _spec_strategy,
    st.sampled_from([1, 2, 4, 8]),
    st.sampled_from([1, 2, 4, 8]),
)
def test_ilp_efficiency_monotone_in_unroll(spec, u1, u2):
    s1 = SchedParams(unroll_oc=u1, unroll_ow=1)
    s2 = SchedParams(unroll_oc=u2, unroll_ow=1)
    if u1 <= u2:
        assert s1.ilp_efficiency() <= s2.ilp_efficiency() + 1e-12


@settings(max_examples=25, deadline=None)
@given(_spec_strategy, st.floats(1.0, 8.0))
def test_divergence_scales_gpu_compute(spec, factor):
    cm = ConvCostModel(SNAPDRAGON_855, "gpu", sparse_efficiency=0.4, fp16=True)
    base = ConvWorkload(
        spec=spec, nnz_weights=spec.weight_count // 4,
        nonzero_kernels=spec.kernel_count, sparse=True,
        register_loads=spec.weight_count,
    )
    diverged = ConvWorkload(**{**base.__dict__, "warp_divergence": factor})
    t0 = cm.estimate(base).compute_ms
    t1 = cm.estimate(diverged).compute_ms
    assert t1 >= t0 - 1e-9
