"""Cache-trace validation of the cost model's tiling assumptions."""

import pytest

from repro.hardware.trace import conv_line_trace, measure_dram_traffic
from repro.models.spec import ConvSpec


@pytest.fixture
def small_spec():
    # Scaled so traces stay small: 16x16 map, 16->16 channels.
    return ConvSpec("trace", 16, 16, 3, padding=1, in_hw=16)


class TestTraceGeneration:
    def test_trace_nonempty_and_line_aligned(self, small_spec):
        lines = list(conv_line_trace(small_spec, tile_oc=4, tile_hw=8))
        assert lines
        assert all(addr % 64 == 0 for addr in lines)

    def test_trace_touches_all_regions(self, small_spec):
        from repro.hardware.trace import TraceRegions

        regions = TraceRegions()
        lines = set(conv_line_trace(small_spec, tile_oc=4, tile_hw=8))
        assert any(a < regions.weight_base for a in lines)  # input
        assert any(regions.weight_base <= a < regions.output_base for a in lines)
        assert any(a >= regions.output_base for a in lines)


class TestTileFitValidation:
    def test_cache_resident_input_loaded_once(self, small_spec):
        """Input (16 KB) fits a 64 KB cache: reload factor ~= 1 even with
        many output-channel tiles — the analytical model's 'fits LLC'
        branch."""
        stats = measure_dram_traffic(small_spec, tile_oc=2, tile_hw=16, cache_kb=64)
        assert stats["input_reload_factor"] < 1.5

    def test_tiny_cache_reloads_input_per_tile(self, small_spec):
        """With a cache far smaller than the input, every oc-tile pass
        re-fetches it: reload factor approaches the pass count."""
        passes = small_spec.out_channels // 2
        stats = measure_dram_traffic(small_spec, tile_oc=2, tile_hw=16, cache_kb=4)
        assert stats["input_reload_factor"] > passes / 4

    def test_bigger_tiles_do_not_hurt_resident_case(self, small_spec):
        small_tile = measure_dram_traffic(small_spec, tile_oc=2, tile_hw=8, cache_kb=64)
        big_tile = measure_dram_traffic(small_spec, tile_oc=16, tile_hw=16, cache_kb=64)
        assert big_tile["total_dram_bytes"] <= small_tile["total_dram_bytes"] * 1.2

    def test_hit_rate_reported(self, small_spec):
        stats = measure_dram_traffic(small_spec, tile_oc=4, tile_hw=8, cache_kb=64)
        assert 0.0 < stats["hit_rate"] <= 1.0
