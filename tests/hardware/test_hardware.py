"""Device catalog, cache simulator, and cost-model monotonicities."""

import numpy as np
import pytest

from repro.hardware import (
    DEVICES,
    KIRIN_980,
    SNAPDRAGON_845,
    SNAPDRAGON_855,
    CacheSim,
    ConvCostModel,
    ConvWorkload,
    get_device,
)
from repro.hardware.cache import CacheHierarchy
from repro.hardware.cost_model import SchedParams
from repro.models.spec import ConvSpec


@pytest.fixture
def spec():
    return ConvSpec("t", 64, 64, 3, padding=1, in_hw=28)


class TestDevices:
    def test_catalog(self):
        assert set(DEVICES) == {"snapdragon855", "snapdragon845", "kirin980"}

    def test_lookup_normalizes(self):
        assert get_device("Snapdragon-855") is SNAPDRAGON_855
        assert get_device("kirin_980") is KIRIN_980

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_device("exynos")

    def test_cpu_peak_gflops(self):
        # 2.42 GHz x 8 cores x 4 lanes x 2 FMA x 2 flops = ~310 GFLOPS
        assert 250 < SNAPDRAGON_855.cpu.peak_gflops < 350

    def test_gpu_fp16_doubles(self):
        gpu = SNAPDRAGON_855.gpu
        assert gpu.peak_gflops_fp16 == 2 * gpu.peak_gflops_fp32

    def test_newer_flagship_faster(self):
        assert SNAPDRAGON_855.gpu.peak_gflops_fp32 > SNAPDRAGON_845.gpu.peak_gflops_fp32

    def test_mali_arch_tagged(self):
        assert KIRIN_980.gpu.arch == "mali"
        assert SNAPDRAGON_855.gpu.arch == "adreno"

    def test_unit_lookup(self):
        assert SNAPDRAGON_855.unit("cpu") is SNAPDRAGON_855.cpu
        with pytest.raises(KeyError):
            SNAPDRAGON_855.unit("npu")


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        cache = CacheSim(1024, line_bytes=64, ways=2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line
        assert not cache.access(64)  # next line

    def test_lru_eviction(self):
        cache = CacheSim(2 * 64, line_bytes=64, ways=2)  # 1 set, 2 ways
        cache.access(0)
        cache.access(64)
        cache.access(0)  # refresh line 0
        cache.access(128)  # evicts line 1 (LRU)
        assert cache.access(0)
        assert not cache.access(64)

    def test_capacity_behaviour(self):
        cache = CacheSim(4096, line_bytes=64, ways=4)
        for addr in range(0, 2048, 64):
            cache.access(addr)
        cache.reset_stats()
        for addr in range(0, 2048, 64):
            cache.access(addr)
        assert cache.stats.hit_rate == 1.0  # working set fits

    def test_thrash_when_oversubscribed(self):
        cache = CacheSim(1024, line_bytes=64, ways=2)
        for _ in range(3):
            for addr in range(0, 8192, 64):
                cache.access(addr)
        assert cache.stats.hit_rate < 0.1

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            CacheSim(1000, line_bytes=64, ways=3)

    def test_hierarchy_routes_misses(self):
        h = CacheHierarchy(l1=CacheSim(256, 64, 2), l2=CacheSim(4096, 64, 4))
        assert h.access(0) == "dram"
        assert h.access(0) == "l1"
        for addr in range(64, 4096, 64):
            h.access(addr)
        # address 0 fell out of the tiny L1 but lives in L2
        assert h.access(0) == "l2"


class TestCostModelMonotonicities:
    def _cm(self, unit="cpu", **kw):
        return ConvCostModel(SNAPDRAGON_855, unit, utilization=0.4, sparse_efficiency=0.7, **kw)

    def test_more_macs_more_time(self, spec):
        cm = self._cm()
        small = ConvWorkload.dense(ConvSpec("s", 32, 32, 3, padding=1, in_hw=28))
        big = ConvWorkload.dense(spec)
        assert cm.estimate(big).total_ms > cm.estimate(small).total_ms

    def test_winograd_faster_than_direct(self, spec):
        cm = self._cm()
        wino = cm.estimate(ConvWorkload.dense(spec, winograd=True)).total_ms
        direct = cm.estimate(ConvWorkload.dense(spec, winograd=False)).total_ms
        assert wino < direct

    def test_sparse_fewer_loads_faster(self, spec):
        cm = self._cm()
        base = dict(spec=spec, nnz_weights=10000, nonzero_kernels=500, sparse=True)
        slow = cm.estimate(ConvWorkload(**base, register_loads=10_000_000)).total_ms
        fast = cm.estimate(ConvWorkload(**base, register_loads=1_000_000)).total_ms
        assert fast < slow

    def test_branchy_slower(self, spec):
        cm = self._cm()
        base = dict(spec=spec, nnz_weights=10000, nonzero_kernels=500, sparse=True, register_loads=10**6)
        assert (
            cm.estimate(ConvWorkload(**base, branchy=True)).total_ms
            > cm.estimate(ConvWorkload(**base, branchy=False)).total_ms
        )

    def test_imbalanced_filters_slower_cpu(self, spec):
        cm = self._cm()
        base = dict(spec=spec, nnz_weights=10000, nonzero_kernels=512, sparse=True, register_loads=10**6)
        even = np.full(64, 8.0)
        skewed = np.concatenate([np.full(8, 57.0), np.full(56, 1.0)])  # same total
        t_even = cm.estimate(ConvWorkload(**base, filter_lengths=even)).total_ms
        t_skew = cm.estimate(ConvWorkload(**base, filter_lengths=skewed)).total_ms
        assert t_skew > t_even

    def test_warp_divergence_slows_gpu_only(self, spec):
        base = dict(spec=spec, nnz_weights=10000, nonzero_kernels=500, sparse=True, register_loads=10**6)
        gpu = self._cm("gpu", fp16=True)
        t1 = gpu.estimate(ConvWorkload(**base, warp_divergence=1.0)).total_ms
        t8 = gpu.estimate(ConvWorkload(**base, warp_divergence=8.0)).total_ms
        assert t8 > t1
        cpu = self._cm("cpu")
        c1 = cpu.estimate(ConvWorkload(**base, warp_divergence=1.0)).total_ms
        c8 = cpu.estimate(ConvWorkload(**base, warp_divergence=8.0)).total_ms
        assert abs(c1 - c8) < 1e-9

    def test_fp16_faster_on_gpu(self, spec):
        work = ConvWorkload.dense(spec)
        t32 = ConvCostModel(SNAPDRAGON_855, "gpu", utilization=0.05, fp16=False).estimate(work).total_ms
        t16 = ConvCostModel(SNAPDRAGON_855, "gpu", utilization=0.05, fp16=True).estimate(work).total_ms
        assert t16 < t32

    def test_unrolling_helps(self, spec):
        cm = self._cm()
        work = ConvWorkload.dense(spec)
        t1 = cm.estimate(work, SchedParams(unroll_oc=1, unroll_ow=1)).total_ms
        t8 = cm.estimate(work, SchedParams(unroll_oc=4, unroll_ow=2)).total_ms
        assert t8 < t1

    def test_icache_factor_kicks_in_beyond_8(self, spec):
        base = dict(spec=spec, nnz_weights=10000, nonzero_kernels=500, sparse=True, register_loads=10**6)
        cm = self._cm()
        t8 = cm.estimate(ConvWorkload(**base, code_versions=8)).total_ms
        t12 = cm.estimate(ConvWorkload(**base, code_versions=12)).total_ms
        t6 = cm.estimate(ConvWorkload(**base, code_versions=6)).total_ms
        assert t6 == t8 < t12

    def test_dense_ignores_load_and_branch_terms(self, spec):
        cm = self._cm()
        cost = cm.estimate(ConvWorkload.dense(spec))
        assert cost.load_ms == 0.0
        assert cost.branch_ms == 0.0
        assert cost.imbalance == 1.0

    def test_breakdown_consistency(self, spec):
        cm = self._cm()
        cost = cm.estimate(ConvWorkload.dense(spec))
        assert cost.total_ms == pytest.approx(max(cost.compute_ms, cost.memory_ms) + cost.overhead_ms)
        assert cost.gflops > 0

    def test_invalid_unit_raises(self):
        with pytest.raises(ValueError):
            ConvCostModel(SNAPDRAGON_855, "npu")

    def test_estimate_model_sums(self, spec):
        cm = self._cm()
        total, costs = cm.estimate_model([ConvWorkload.dense(spec)] * 3)
        assert total == pytest.approx(sum(c.total_ms for c in costs))
