"""Repo-wide pytest configuration: a hand-rolled per-test ``--timeout``.

The serving suites spawn worker processes, SIGSTOP/SIGKILL them, and
inject faults; the failure mode of a bug there is not a red assertion
but a *hang* (a future that never resolves, a join on a stopped
process).  Without a watchdog, a hang eats the whole CI budget and the
log ends mid-test with no culprit.

``pytest-timeout`` is not available in this environment, so this is the
minimal equivalent: ``--timeout <seconds>`` arms a daemon timer around
each test.  If the test (including its fixtures' setup/teardown for
that node) is still running when the timer fires, every thread's stack
is dumped to stderr — naming the wedged frame — and the process exits
hard.  ``os._exit`` is deliberate: a hung test often holds
non-daemon threads or stopped children that would block a graceful
``pytest.exit``.

No option means no watchdog (local debugging stays unconstrained);
``scripts/check.sh`` passes an explicit budget for CI.
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading

import pytest


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--timeout",
            type=float,
            default=None,
            help="per-test watchdog in seconds: dump all thread stacks "
                 "and abort the run if a single test exceeds it",
        )
    except ValueError:
        # another plugin already owns --timeout (e.g. pytest-timeout
        # appears in the environment later): defer to it
        pass


def _abort(item, timeout: float) -> None:
    # lift pytest's fd-level capture first, or the dump dies with the
    # process inside a capture tempfile nobody will ever read
    capman = item.config.pluginmanager.getplugin("capturemanager")
    if capman is not None:
        try:
            capman.suspend_global_capture(in_=True)
        except Exception:
            pass
    sys.stderr.write(
        f"\n\n== WATCHDOG: {item.nodeid!r} still running after {timeout:g}s "
        f"— dumping threads and aborting ==\n"
    )
    sys.stderr.flush()
    faulthandler.dump_traceback(file=sys.stderr)
    sys.stderr.flush()
    os._exit(70)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    timeout = item.config.getoption("--timeout", None)
    if not timeout or timeout <= 0:
        yield
        return
    timer = threading.Timer(timeout, _abort, args=(item, timeout))
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()
