"""Figure 14 — FKR length grouping (a) and LRE load reduction (b)."""

from conftest import emit

from repro.bench.perf_experiments import _pruned_unique_layer, fig14a_filter_lengths, fig14b_register_loads
from repro.compiler.lre import count_register_loads
from repro.compiler.reorder import filter_kernel_reorder
from repro.compiler.storage import FKWLayer


def test_fig14a_filter_length_distribution(benchmark):
    spec, w, assignment, ps = _pruned_unique_layer("L4")
    benchmark(filter_kernel_reorder, assignment)
    table = fig14a_filter_lengths("L4")
    emit(table)
    values = dict(zip(table.column("metric"), zip(table.column("before"), table.column("after"))))
    before_frac = float(values["adjacent-equal fraction"][0])
    after_frac = float(values["adjacent-equal fraction"][1])
    assert after_frac > before_frac + 0.3, "FKR must cluster equal-length filters"


def test_fig14b_register_load_counts(benchmark):
    spec, w, assignment, ps = _pruned_unique_layer("L4")
    fkw = FKWLayer.from_pruned(w, assignment, ps)
    benchmark(count_register_loads, fkw, spec.out_hw)
    table = fig14b_register_loads()
    emit(table)
    for row in table.rows:
        reduction = float(row[3].rstrip("x"))
        assert reduction > 1.8, f"{row[0]}: LRE reduction only {reduction}x"
