"""Figure 12 — overall latency: PatDNN vs TFLite/TVM/MNN.

Expected shape: PatDNN fastest everywhere; TFLite slowest on CPU;
TFLite cannot run VGG/ImageNet on GPU; CPU speedups over TFLite in the
double digits, single digits over TVM/MNN.
"""

import pytest
from conftest import emit

from repro.bench import paper
from repro.bench.perf_experiments import _latency, fig12_overall
from repro.frameworks import get_engine
from repro.hardware import SNAPDRAGON_855
from repro.models import get_spec


@pytest.mark.parametrize("dataset", ["imagenet", "cifar10"])
def test_fig12_overall(benchmark, dataset):
    table = fig12_overall(dataset)  # cached — runs once

    # Characteristic kernel: a dense engine preparation (cost estimate).
    spec = get_spec("mobilenet_v2", dataset)
    engine = get_engine("mnn", SNAPDRAGON_855, "cpu")
    benchmark(engine.prepare, spec)

    emit(table)
    for row in table.rows:
        model, unit = row[0], row[1]
        pat = float(row[5])
        for col, name in ((2, "tflite"), (3, "tvm"), (4, "mnn")):
            if row[col] == "N/A":
                assert name == "tflite" and unit == "gpu" and model == "VGG"
                continue
            assert float(row[col]) > pat, f"{name} beat PatDNN on {model}/{unit}"

    if dataset == "imagenet":
        vgg_cpu = next(r for r in table.rows if r[0] == "VGG" and r[1] == "cpu")
        speedup = float(vgg_cpu[2]) / float(vgg_cpu[5])
        lo, hi = paper.FIG12_SPEEDUP_RANGES[("tflite", "cpu")]
        assert paper.within(speedup, lo, hi, slack=0.5), f"VGG CPU speedup {speedup:.1f}x"
