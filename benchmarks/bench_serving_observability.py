"""Observability overhead: request tracing must be ~free on the hot path.

Telemetry only earns its place in the serving stack if turning it on
does not move the latency it is supposed to measure.  The registry
counters are always on (they replaced the old ad-hoc stats, same lock
discipline), so the knob that matters is **trace sampling**: at the
default 1% rate, an unsampled request pays one counter increment and a
modulo; a sampled request pays span collection through every tier.

Acceptance gates:

* **always** (including ``--benchmark-disable``): at the default sample
  rate, the measured p50 of a sequential closed loop stays within
  **5%** of the tracing-off p50 (plus a small absolute floor so
  sub-millisecond clock jitter cannot flake the gate); outputs stay
  correct and sampled requests really produce complete traces.
* the measured numbers land in ``BENCH_observability.json`` at the repo
  root, so the overhead is a tracked artifact, not a one-off claim.

``trace_sample_rate=1.0`` is measured for the table as the worst case
(every request traced end to end, spans shipped over the transport) but
deliberately not gated: tracing everything is a debugging posture, not
a serving posture.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.runtime import ServingConfig, TelemetryConfig
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec
from repro.runtime.telemetry import DEFAULT_TRACE_SAMPLE_RATE

N_SHARDS = 2
IN_SIZE = 16
_CORES = len(os.sched_getaffinity(0))
_WORKER_ENV = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1"}
#: 5% relative gate + 0.25 ms absolute floor (clock/scheduler jitter on
#: a ~5 ms request is larger than the effect being measured otherwise)
GATE_RELATIVE = 1.05
GATE_FLOOR_MS = 0.25
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_observability.json"


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("obs-bench") / "bundle.npz"
    return projected_smallcnn_spec(
        str(bundle),
        channels=(32, 32, 64),
        in_size=IN_SIZE,
        serving_config=ServingConfig(max_batch=8, max_wait_ms=2.0),
    )


@pytest.fixture(scope="module")
def requests_pool():
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal((2, 3, IN_SIZE, IN_SIZE)).astype(np.float32)
        for _ in range(8)
    ]


def _measure(server, requests, n, warmup):
    """Sequential closed loop: per-request wallclock, stats off one run."""
    for i in range(warmup):
        server.run(requests[i % len(requests)], timeout=120)
    latencies = []
    for i in range(n):
        start = time.perf_counter()
        server.run(requests[i % len(requests)], timeout=120)
        latencies.append((time.perf_counter() - start) * 1e3)
    arr = np.asarray(latencies)
    return {
        "requests": n,
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "mean_ms": float(arr.mean()),
    }


def test_tracing_overhead_gate(spec, requests_pool, request):
    fast_pass = request.config.getoption("benchmark_disable")
    n = 60 if fast_pass else 300
    warmup = 10 if fast_pass else 40
    rounds = 2  # interleaved rounds cancel monotonic machine drift

    configs = [
        ("off", 0.0),
        ("default", DEFAULT_TRACE_SAMPLE_RATE),
        ("full", 1.0),
    ]
    measured = {}
    for _ in range(rounds):
        for label, rate in configs:
            with ShardedServer(
                spec, num_shards=N_SHARDS, worker_env=_WORKER_ENV,
                telemetry=TelemetryConfig(trace_sample_rate=rate),
            ) as server:
                sample = _measure(server, requests_pool, n, warmup)
                traces = server.trace_ids()
                stats = server.cluster_stats
            assert stats["errors"] == 0 and stats["corrupt"] == 0
            if rate == 0.0:
                assert traces == []  # tracing off really is off
            elif rate == 1.0:
                # every request sampled (trace store holds the newest ones)
                assert len(traces) == min(n + warmup, 256)
            best = measured.get(label)
            if best is None or sample["p50_ms"] < best["p50_ms"]:
                measured[label] = sample  # best-of-rounds, noise-robust

    off, default, full = measured["off"], measured["default"], measured["full"]
    overhead_default = default["p50_ms"] / off["p50_ms"] - 1.0
    overhead_full = full["p50_ms"] / off["p50_ms"] - 1.0

    results = {
        "bench": "serving_observability",
        "shards": N_SHARDS,
        "cores": _CORES,
        "sample_rates": {label: rate for label, rate in configs},
        "measured": measured,
        "p50_overhead_default_pct": overhead_default * 100.0,
        "p50_overhead_full_pct": overhead_full * 100.0,
        "gate": {"relative": GATE_RELATIVE, "floor_ms": GATE_FLOOR_MS},
        "rounds": rounds,
        "fast_pass": fast_pass,
    }
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    table = ResultTable(
        f"tracing overhead — sequential closed loop, {n} requests, "
        f"{N_SHARDS} shards, {_CORES} usable core(s)",
        ["trace sampling", "p50 ms", "p95 ms", "mean ms", "p50 overhead"],
    )
    for label, _ in configs:
        m = measured[label]
        rel = m["p50_ms"] / off["p50_ms"] - 1.0
        table.add(label, f"{m['p50_ms']:.3f}", f"{m['p95_ms']:.3f}",
                  f"{m['mean_ms']:.3f}", f"{rel * 100:+.1f}%")
    table.note(f"gate: default-rate p50 <= off p50 * {GATE_RELATIVE} + "
               f"{GATE_FLOOR_MS} ms; full tracing shown unguarded as the "
               f"worst case; numbers written to {OUT_PATH.name}")
    emit(table)

    assert default["p50_ms"] <= off["p50_ms"] * GATE_RELATIVE + GATE_FLOOR_MS, (
        f"default-rate tracing moved p50 from {off['p50_ms']:.3f} ms to "
        f"{default['p50_ms']:.3f} ms (+{overhead_default * 100:.1f}%) — "
        "sampling is supposed to keep the hot path unmeasurable"
    )


def test_sampled_trace_complete_under_load(spec, requests_pool):
    """Correctness side of the overhead story: the traces bought with
    that overhead are complete timelines, even with the server busy."""
    with ShardedServer(
        spec, num_shards=N_SHARDS, worker_env=_WORKER_ENV,
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
    ) as server:
        futs = [server.submit(r) for r in requests_pool]
        for fut in futs:
            assert fut.result(timeout=120).shape == (2, 10)
        tid = futs[0].trace_id
        deadline = time.monotonic() + 20
        names = []
        while time.monotonic() < deadline:
            trace = server.get_trace(tid)
            names = [s["name"] for s in trace["spans"]] if trace else []
            if "reply" in names:
                break
            time.sleep(0.05)
        for required in ("admission", "dispatch", "transport", "worker_queue",
                         "queue_wait", "execute", "reply"):
            assert required in names, f"missing {required!r} in {names}"


def test_traced_round_trip_wallclock(benchmark, spec, requests_pool):
    """pytest-benchmark timing of a fully-traced round trip (worst case:
    every request collects spans through every tier)."""
    with ShardedServer(
        spec, num_shards=N_SHARDS, worker_env=_WORKER_ENV,
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
    ) as server:

        def round_trip():
            futs = [server.submit(r) for r in requests_pool]
            return [f.result(timeout=120) for f in futs]

        outs = benchmark(round_trip)
    assert len(outs) == len(requests_pool)
    assert outs[0].shape == (2, 10)
