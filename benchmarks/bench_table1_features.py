"""Table 1 — framework optimization-knob matrix."""

from conftest import emit

from repro.bench.registry import EXPERIMENTS
from repro.frameworks import feature_matrix


def test_table1_feature_matrix(benchmark):
    benchmark(feature_matrix)
    table = EXPERIMENTS["table1"].run()
    emit(table)
    # PatDNN must be the only engine with the six sparse-stack knobs.
    sparse_rows = [r for r in table.rows if r[0].startswith(("sparse", "pattern", "connectivity", "filter", "opt_sparse"))]
    for row in sparse_rows:
        assert row[1:4] == ["N", "N", "N"] and row[4] == "Y"
