"""Table 5 — model characteristics vs the paper."""

from conftest import emit

from repro.bench.registry import EXPERIMENTS
from repro.models import get_spec


def test_table5_model_zoo(benchmark):
    benchmark(get_spec, "resnet50", "imagenet")
    table = EXPERIMENTS["table5"].run()
    emit(table)
    for row in table.rows:
        measured, expected = float(row[4]), float(row[5])
        assert abs(measured - expected) / expected < 0.08, row
