"""Wall-clock benchmarks of the *actual generated kernels*.

Everything else in this suite times the cost model; this module times
the executable numpy kernels produced by the code generator, verifying
the paper's qualitative ordering holds even in our Python substrate:
the branchy per-kernel-switch variant is slowest, the vectorised LRE
variant is fastest.
"""

import numpy as np
import pytest

from repro.compiler.codegen import generate_kernel
from repro.compiler.compile import prune_spec_layer
from repro.compiler.storage import FKWLayer
from repro.core.patterns import mine_pattern_set
from repro.models.spec import ConvSpec
from repro.utils.rng import make_rng

SPEC = ConvSpec("bench", 32, 32, 3, padding=1, in_hw=28)


@pytest.fixture(scope="module")
def layer():
    rng = make_rng(0)
    w0 = SPEC.make_weights(rng)
    ps = mine_pattern_set([w0], k=8)
    w, assignment = prune_spec_layer(SPEC, ps, 3.6, rng, weights=w0)
    fkw = FKWLayer.from_pruned(w, assignment, ps)
    x = rng.standard_normal((SPEC.in_channels, SPEC.in_hw, SPEC.in_hw)).astype(np.float32)
    return fkw, x


@pytest.mark.parametrize("opt_level", ["no-opt", "reorder", "lre"])
def test_generated_kernel_wallclock(benchmark, layer, opt_level):
    fkw, x = layer
    fn = generate_kernel(fkw, 1, 1, opt_level)
    result = benchmark(fn, x)
    assert result.shape == (SPEC.out_channels, SPEC.out_hw, SPEC.out_hw)


def test_lre_variant_is_fastest(layer):
    """Direct wall-clock comparison, independent of the fixture stats."""
    import time

    fkw, x = layer
    timings = {}
    for lvl in ("no-opt", "lre"):
        fn = generate_kernel(fkw, 1, 1, lvl)
        fn(x)  # warm-up
        start = time.perf_counter()
        for _ in range(3):
            fn(x)
        timings[lvl] = time.perf_counter() - start
    assert timings["lre"] < timings["no-opt"]
