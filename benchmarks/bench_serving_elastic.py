"""Elastic membership under steady load: growing the cluster adds capacity.

``ShardedServer.add_shard`` / ``remove_shard`` exist so an operator (or
autoscaler) can resize a live cluster without restarting it.  That claim
has two measurable halves, and this bench gates both:

* **zero disruption** — with a closed-loop client fleet running the whole
  time, adding two shards and then drain-removing one must produce zero
  client-visible errors (``stats["errors"] == 0`` and no client raised);
* **real capacity** — every added shard must actually serve traffic
  (``requests > 0`` in ``cluster_stats``), and in benchmark mode on a
  multi-core box the measured throughput after growing 1 → 3 shards must
  rise — shards that join the map but not the dispatch path would pass a
  liveness check and still be useless.

Acceptance gates:

* **always** (including ``--benchmark-disable``): zero client errors
  across the add + remove sequence, both added shards have
  ``requests > 0``, outputs match ``session.run`` bit-for-bit on a
  spot-check after the membership churn.
* **benchmark mode** (and ≥ 3 usable cores): throughput measured over a
  steady window after the grow is at least 1.15x the single-shard
  window — a deliberately loose bound (workers share cores with the
  client fleet) that still catches add-shard-without-capacity bugs.
"""

import os
import threading
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.runtime import ServingConfig
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

N_CLIENTS = 8
SAMPLES_PER_REQUEST = 2
IN_SIZE = 16
_CORES = len(os.sched_getaffinity(0))
_WORKER_ENV = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1"}


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("elastic-bench") / "bundle.npz"
    return projected_smallcnn_spec(
        str(bundle),
        channels=(32, 32, 64),
        in_size=IN_SIZE,
        serving_config=ServingConfig(max_batch=N_CLIENTS, max_wait_ms=4.0),
    )


@pytest.fixture(scope="module")
def local_session(spec):
    session = spec.build()
    yield session
    session.close()


@pytest.fixture(scope="module")
def requests_pool():
    rng = np.random.default_rng(7)
    return [
        rng.standard_normal((SAMPLES_PER_REQUEST, 3, IN_SIZE, IN_SIZE)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]


class _SteadyLoad:
    """Closed-loop client fleet that runs until told to stop, counting
    completions so throughput can be sampled over wall-clock windows."""

    def __init__(self, server, requests):
        self._server = server
        self._requests = requests
        self._stop = threading.Event()
        self.errors: list[BaseException] = []
        self._done = [0] * len(requests)
        self._threads = [
            threading.Thread(target=self._client, args=(i,))
            for i in range(len(requests))
        ]

    def _client(self, i):
        try:
            while not self._stop.is_set():
                self._server.submit(self._requests[i]).result(timeout=120)
                self._done[i] += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            self.errors.append(exc)

    def __enter__(self):
        for t in self._threads:
            t.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        for t in self._threads:
            t.join(timeout=120)

    def completed(self):
        return sum(self._done)

    def rate_over(self, window_s):
        """Completed requests per second over one wall-clock window."""
        start = self.completed()
        t0 = time.perf_counter()
        time.sleep(window_s)
        return (self.completed() - start) / (time.perf_counter() - t0)


def test_grow_under_load_adds_capacity(spec, local_session, requests_pool, request):
    fast_pass = request.config.getoption("benchmark_disable")
    window_s = 0.75 if fast_pass else 2.0

    with ShardedServer(
        spec, num_shards=1, worker_env=_WORKER_ENV, health_interval_s=0.2
    ) as server:
        with _SteadyLoad(server, requests_pool) as load:
            # warm up: every client has completed at least one round trip
            deadline = time.monotonic() + 60
            while load.completed() < N_CLIENTS and time.monotonic() < deadline:
                time.sleep(0.02)
            assert load.completed() >= N_CLIENTS, "fleet never warmed up"

            rate_before = load.rate_over(window_s)

            added = [server.add_shard(), server.add_shard()]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                by_index = {
                    e["shard"]: e["requests"] for e in server.cluster_stats["shards"]
                }
                if all(by_index.get(i, 0) > 0 for i in added):
                    break
                time.sleep(0.02)

            rate_after = load.rate_over(window_s)

            # drain-remove one of the new shards while the fleet still runs
            outcome = server.remove_shard(added[1], drain=True, timeout=60.0)

        assert not load.errors, load.errors[:3]
        stats = server.cluster_stats
        assert stats["errors"] == 0, "membership churn surfaced request errors"
        assert outcome["failed"] == 0
        by_index = {e["shard"]: e["requests"] for e in stats["shards"]}
        assert by_index.get(added[0], 0) > 0, "added shard never served a request"
        assert added[1] not in by_index
        # churn left the cluster computing the right function
        np.testing.assert_array_equal(
            server.run(requests_pool[0], timeout=120),
            local_session.run(requests_pool[0]),
        )

    if fast_pass:
        pytest.skip(
            "zero-error elastic churn verified; throughput gate needs benchmark mode"
        )

    table = ResultTable(
        f"elastic scaling under steady load — {N_CLIENTS} closed-loop clients, "
        f"{SAMPLES_PER_REQUEST}-sample requests, {_CORES} usable core(s)",
        ["membership", "req/s", "relative"],
    )
    table.add("1 shard", f"{rate_before:.0f}", "1.00x")
    table.add("3 shards (2 added live)", f"{rate_after:.0f}",
              f"{rate_after / rate_before:.2f}x")
    table.note("same fleet ran uninterrupted across both windows; one added shard "
               "was then drain-removed with zero client-visible errors")
    emit(table)

    if _CORES >= 3:
        assert rate_after > rate_before * 1.15, (
            f"growing 1 -> 3 shards moved throughput {rate_before:.0f} -> "
            f"{rate_after:.0f} req/s; added shards are not adding capacity"
        )
