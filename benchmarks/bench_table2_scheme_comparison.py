"""Table 2 — pruning-scheme comparison at equal rate.

Expected shape (paper Table 2): non-structured keeps the highest
accuracy, pattern-based pruning stays close, whole-filter/channel
structured pruning loses the most.
"""

from conftest import emit

from repro.bench.accuracy_experiments import table2_scheme_comparison
from repro.core.projections import project_filters, project_magnitude
from repro.models import build_small_cnn


def test_table2_scheme_comparison(benchmark):
    # The characteristic kernel: one structured vs one magnitude projection.
    model = build_small_cnn(channels=(16, 32), in_size=12)
    w = None
    for _, m in model.named_modules():
        if hasattr(m, "weight") and m.weight is not None and m.weight.data.ndim == 4:
            w = m.weight.data
            break

    def projections():
        project_filters(w, max(1, w.shape[0] // 4))
        project_magnitude(w, max(1, w.size // 4))

    benchmark(projections)

    table = table2_scheme_comparison(fast=True)
    emit(table)
    acc = {row[0]: float(row[1]) for row in table.rows}
    # Fine-grained schemes must not fall below the structured ones by a
    # wide margin (the paper's qualitative ordering, with small-sample
    # noise tolerance).
    fine = max(acc["non-structured"], acc["pattern + connectivity"])
    coarse = max(acc["filter (structured)"], acc["channel (structured)"])
    assert fine >= coarse - 5.0
