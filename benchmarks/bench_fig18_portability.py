"""Figure 18 — portability across Snapdragon 855/845 and Kirin 980.

Expected shape: baselines degrade sharply on the Mali GPU (Kirin 980)
while PatDNN's latency stays within a small factor of its Snapdragon
855 value (§6.5).
"""

from conftest import emit

from repro.bench.perf_experiments import fig18_portability
from repro.frameworks import get_engine
from repro.hardware import KIRIN_980
from repro.models import get_spec
from repro.models.spec import ConvSpec, ModelSpec


def test_fig18_portability(benchmark):
    table = fig18_portability()  # cached

    tiny = ModelSpec("tiny", "synthetic", [ConvSpec("c", 16, 32, 3, padding=1, in_hw=16)], total_layers=1)
    engine = get_engine("tvm", KIRIN_980, "gpu")
    benchmark(engine.prepare, tiny)

    emit(table)
    rows = {(r[0], r[1]): r for r in table.rows}
    base = rows[("snapdragon855", "gpu")]
    kirin = rows[("kirin980", "gpu")]
    tvm_ratio = float(kirin[3]) / float(base[3])
    pat_ratio = float(kirin[5]) / float(base[5])
    assert tvm_ratio > 2.5, f"TVM should degrade sharply on Mali (got {tvm_ratio:.2f}x)"
    assert pat_ratio < 1.6, f"PatDNN should stay stable (got {pat_ratio:.2f}x)"
    # PatDNN remains the fastest engine on every device/unit.
    for (device, unit), row in rows.items():
        pat = float(row[5])
        others = [float(c) for c in row[2:5] if c != "N/A"]
        assert pat < min(others), f"PatDNN not fastest on {device}/{unit}"
