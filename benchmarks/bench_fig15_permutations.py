"""Figure 15 — GFLOPS across loop permutations and blocking.

Expected shape: blocked+unrolled schedules dominate their unblocked
counterparts on every layer; best configuration differs per layer,
which is the argument for per-layer auto-tuning.
"""

import pytest
from conftest import emit

from repro.bench.perf_experiments import _cost_model, _pruned_unique_layer, fig15_permutations
from repro.compiler.compile import OptLevel, compile_layer
from repro.hardware.cost_model import SchedParams


@pytest.mark.parametrize("dataset", ["imagenet", "cifar10"])
def test_fig15_permutations(benchmark, dataset):
    spec, w, assignment, ps = _pruned_unique_layer("L6")
    cm = _cost_model("cpu")
    cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
    benchmark(cm.estimate, cl.workload, SchedParams(blocked=True, unroll_oc=4))

    table = fig15_permutations(dataset)
    emit(table)
    for row in table.rows:
        cocihw, cohwci = float(row[1]), float(row[2])
        cocihw_b, cohwci_b = float(row[3]), float(row[4])
        assert cocihw_b >= cocihw, f"{row[0]}: blocking should not hurt CoCiHW"
        assert cohwci_b >= cohwci, f"{row[0]}: blocking should not hurt CoHWCi"
