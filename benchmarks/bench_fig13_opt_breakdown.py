"""Figure 13 — per-optimization speedup breakdown on VGG L1..L9.

Expected shape (paper): reorder 1.6-3.0x (CPU) / 2.7-6.1x (GPU), LRE
1.6-2.8x / 1.5-3.3x, tuning 1.2-1.9x / 1.4-3.8x — each multiplicative
over No-opt, larger layers gaining more.
"""

import pytest
from conftest import emit

from repro.bench import paper
from repro.bench.perf_experiments import _cost_model, _pruned_unique_layer, fig13_breakdown
from repro.compiler.compile import OptLevel, compile_layer


@pytest.mark.parametrize("unit", ["cpu", "gpu"])
def test_fig13_breakdown(benchmark, unit):
    table = fig13_breakdown(unit)  # cached

    spec, w, assignment, ps = _pruned_unique_layer("L4")
    cm = _cost_model(unit)
    benchmark(compile_layer, spec, w, assignment, ps, cm, OptLevel.LRE)

    emit(table)
    # Check the big layers (L4+) land within the paper ranges with slack.
    for row in table.rows[3:]:
        reorder = float(row[2].rstrip("x"))
        lre = float(row[3].rstrip("x"))
        tune = float(row[4].rstrip("x"))
        total = float(row[5].rstrip("x"))
        lo, hi = paper.FIG13_RANGES[(unit, "reorder")]
        assert paper.within(reorder, lo, hi, slack=0.45), f"{row[0]} reorder {reorder}"
        lo, hi = paper.FIG13_RANGES[(unit, "lre")]
        assert paper.within(lre, lo, hi, slack=0.45), f"{row[0]} lre {lre}"
        lo, hi = paper.FIG13_RANGES[(unit, "tune")]
        assert paper.within(tune, lo, hi, slack=0.45), f"{row[0]} tune {tune}"
        assert total > 2.0
