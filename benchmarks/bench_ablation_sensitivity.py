"""Ablation — uniform vs sensitivity-allocated connectivity budgets.

The paper uses a uniform rate per layer (§4.2); this bench measures what
per-layer sensitivity allocation buys at the same global compression.
"""

from conftest import emit

from repro.bench.reporting import ResultTable
from repro.bench.trainutil import clone_pretrained, pretrained_workbench
from repro.core.masking import MaskedRetrainer, extract_masks
from repro.core.sensitivity import (
    allocate_connectivity,
    apply_connectivity_budgets,
    measure_sensitivity,
)


def test_ablation_sensitivity_allocation(benchmark):
    wb, state = pretrained_workbench()
    base = clone_pretrained(wb, state)
    base_acc = wb.accuracy(base) * 100
    rate = 3.0

    # Uniform budgets (the paper's heuristic), with light retraining.
    uniform = clone_pretrained(wb, state)
    masks = extract_masks(uniform, None, connectivity_rate=rate)
    MaskedRetrainer(uniform, masks).train(wb.loader, epochs=4)
    uniform_acc = wb.accuracy(uniform) * 100

    # Sensitivity-allocated budgets at the same global rate.
    allocated = clone_pretrained(wb, state)
    sens = benchmark.pedantic(
        measure_sensitivity,
        args=(allocated, wb.test.images, wb.test.labels),
        kwargs={"rates": (2.0, 4.0)},
        rounds=1,
        iterations=1,
    )
    budgets = allocate_connectivity(sens, global_rate=rate)
    masks = apply_connectivity_budgets(allocated, budgets)
    MaskedRetrainer(allocated, masks).train(wb.loader, epochs=4)
    allocated_acc = wb.accuracy(allocated) * 100

    table = ResultTable(
        f"Ablation — connectivity budget allocation at {rate}x",
        ["scheme", "accuracy %"],
    )
    table.add("dense baseline", f"{base_acc:.1f}")
    table.add("uniform rate (paper heuristic)", f"{uniform_acc:.1f}")
    table.add("sensitivity-allocated", f"{allocated_acc:.1f}")
    emit(table)
    # Allocation must not be materially worse than uniform.
    assert allocated_acc >= uniform_acc - 6.0
