"""§5.5 — auto-tuner exploration speed and estimator quality.

The paper reports GA exploration completing in 3-5 ms for a large DNN's
layer; here the benchmark fixture times one GA generation-equivalent
(a batch of cost evaluations) and the table reports search quality.
"""

from conftest import emit

from repro.bench.perf_experiments import _cost_model, _pruned_unique_layer, tuner_exploration
from repro.compiler.compile import OptLevel, compile_layer
from repro.compiler.tuner import GATuner


def test_tuner_exploration(benchmark):
    spec, w, assignment, ps = _pruned_unique_layer("L6")
    cm = _cost_model("cpu")
    cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
    tuner = GATuner(cm, population=8, generations=2, seed=0)
    benchmark(tuner.tune, cl.workload)

    table = tuner_exploration("L6")
    emit(table)
    vals = dict(zip(table.column("method"), (float(v) for v in table.column("latency ms"))))
    assert vals["GA (24x12)"] <= vals["default schedule"]
    assert vals["GA (24x12)"] <= vals["random search (288 samples)"] * 1.05
    assert vals["estimator-predicted pick (64 candidates)"] <= vals["default schedule"] * 1.1
