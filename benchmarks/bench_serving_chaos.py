"""Serving goodput under seeded chaos: the resilience acceptance bench.

The resilience work (retries, breakers, deadlines, checksums) claims one
operational invariant: under a ~10% injected-fault rate — worker
crashes, stalls, tail latency, response corruption, slot exhaustion —
**every** request still resolves before its deadline, either as the
correct result or as a typed error, and the goodput cost is bounded.

This bench drives a clean cluster and an identically-configured chaotic
one (seeded :class:`~repro.runtime.faults.FaultPlan`, so the same
faults every run) from 16 closed-loop clients and reports both, plus
the resilience counters that prove the chaos actually happened.

Acceptance gates:

* **always** (including ``--benchmark-disable``): zero bare errors,
  zero wrong results, zero hangs; 100% of requests resolve as correct
  or typed; the chaos run demonstrably injected faults (respawns,
  corrupt catches, retries all non-zero in ``cluster_stats``).
* **benchmark mode**: the chaos run retains >= a third of the clean
  run's goodput (correct results per second) — resilience must degrade
  gracefully, not collapse, while workers are being crashed and
  stalled underneath it (each crash costs a full worker respawn, which
  dominates at this demo scale).

``max_batch=1`` serving keeps worker dispatch shapes identical to
``session.run``, so correctness is checked **bitwise** even under
concurrency.
"""

import threading
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.runtime import FaultPlan, ResilienceConfig, ServingConfig
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

N_SHARDS = 3
N_CLIENTS = 16
IN_SIZE = 8
DEADLINE_S = 60.0
_WORKER_ENV = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1"}

#: ~12% of request ids fault, split over every kind the harness knows
PLAN = FaultPlan(
    seed=1,
    crash_rate=0.02,
    stall_rate=0.02,
    slow_rate=0.02,
    corrupt_rate=0.02,
    slot_exhaust_rate=0.02,
    stall_s=0.3,
    start_after=N_SHARDS * 2,
)
RESILIENCE = ResilienceConfig(max_retries=3, request_timeout_s=2.0)


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("chaos-bench") / "bundle.npz"
    return projected_smallcnn_spec(
        str(bundle), in_size=IN_SIZE, serving_config=ServingConfig(max_batch=1)
    )


@pytest.fixture(scope="module")
def requests_pool(spec):
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal((1, 3, IN_SIZE, IN_SIZE)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]


@pytest.fixture(scope="module")
def expected(spec, requests_pool):
    session = spec.build()
    outs = [session.run(r) for r in requests_pool]
    session.close()
    return outs


def _drive(server, requests_pool, expected, per_client):
    """Closed-loop clients with deadlines; classifies every outcome."""
    counts = {"correct": 0, "typed": 0, "wrong": 0, "bare": 0}
    lock = threading.Lock()
    errors: list[BaseException] = []

    def client(i):
        try:
            for _ in range(per_client):
                try:
                    out = server.submit(
                        requests_pool[i], deadline=DEADLINE_S
                    ).result(timeout=120)
                except RuntimeError as exc:
                    key = "bare" if type(exc) is RuntimeError else "typed"
                    with lock:
                        counts[key] += 1
                    continue
                ok = np.array_equal(out, expected[i])
                with lock:
                    counts["correct" if ok else "wrong"] += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(N_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    elapsed = time.perf_counter() - start
    hung = sum(t.is_alive() for t in threads)
    if errors:
        raise errors[0]
    return elapsed, counts, hung


def test_chaos_goodput(spec, requests_pool, expected, request):
    """Acceptance gate: correct-or-typed under chaos, bounded goodput cost."""
    fast_pass = request.config.getoption("benchmark_disable")
    per_client = 4 if fast_pass else 12
    total = N_CLIENTS * per_client

    with ShardedServer(
        spec, num_shards=N_SHARDS, resilience=RESILIENCE, worker_env=_WORKER_ENV
    ) as server:
        t_clean, clean, hung = _drive(server, requests_pool, expected, per_client)
        assert hung == 0 and clean["bare"] == 0 and clean["wrong"] == 0
        assert clean["correct"] == total  # no faults -> no typed errors either

    # ids [start_after, total) are all drawn by some attempt, so the plan
    # itself says how much chaos the run must at least have seen
    planned_crash = sum(PLAN.decide(i) == "crash" for i in range(total))
    planned_corrupt = sum(PLAN.decide(i) == "corrupt" for i in range(total))
    assert planned_crash >= 1 and planned_corrupt >= 1  # seed sanity

    with ShardedServer(
        spec, num_shards=N_SHARDS, resilience=RESILIENCE,
        faults=PLAN, worker_env=_WORKER_ENV,
    ) as server:
        t_chaos, chaos, hung = _drive(server, requests_pool, expected, per_client)
        # respawns land asynchronously after the failed futures resolve
        deadline = time.monotonic() + 20
        while (
            server.cluster_stats["respawns"] < planned_crash
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        stats = server.cluster_stats

    # the invariant: nothing hangs, nothing lies, everything resolves
    assert hung == 0, f"{hung} client(s) hung under chaos"
    assert chaos["bare"] == 0, "untyped error escaped the resilience layer"
    assert chaos["wrong"] == 0, "corrupted/wrong payload delivered as data"
    assert chaos["correct"] + chaos["typed"] == total
    # ... and the chaos was real, not a silently clean run
    assert stats["respawns"] >= planned_crash
    assert stats["corrupt"] >= planned_corrupt
    assert stats["retries"] >= 1

    goodput_clean = clean["correct"] / t_clean
    goodput_chaos = chaos["correct"] / t_chaos
    table = ResultTable(
        f"serving-chaos — {N_CLIENTS} closed-loop clients, {N_SHARDS} shards, "
        f"seeded ~10% fault rate (crash/stall/slow/corrupt/slot-exhaust)",
        ["run", "correct", "typed errs", "goodput (req/s)", "wallclock (s)"],
    )
    table.add("clean", str(clean["correct"]), str(clean["typed"]),
              f"{goodput_clean:.0f}", f"{t_clean:.3f}")
    table.add("chaos", str(chaos["correct"]), str(chaos["typed"]),
              f"{goodput_chaos:.0f}", f"{t_chaos:.3f}")
    table.note(f"chaos run: {stats['retries']} retries, {stats['respawns']} respawns, "
               f"{stats['corrupt']} corrupt payloads caught, "
               f"{stats['shed']} shed, {stats['timed_out']} timed out — "
               "every request resolved as bitwise-correct or a typed error")
    emit(table)

    if fast_pass:
        pytest.skip("correct-or-typed invariant verified; goodput gate needs benchmark mode")
    assert goodput_chaos >= goodput_clean / 3, (
        f"goodput collapsed under chaos: {goodput_chaos:.0f} vs clean "
        f"{goodput_clean:.0f} req/s"
    )


def test_chaos_round_trip_wallclock(benchmark, spec, requests_pool, expected):
    """pytest-benchmark timing of one 16-client round trip under chaos."""
    with ShardedServer(
        spec, num_shards=N_SHARDS, resilience=RESILIENCE,
        faults=PLAN, worker_env=_WORKER_ENV,
    ) as server:

        def round_trip():
            futs = [server.submit(r, deadline=DEADLINE_S) for r in requests_pool]
            outs = []
            for f in futs:
                try:
                    outs.append(f.result(timeout=120))
                except RuntimeError as exc:
                    if type(exc) is RuntimeError:
                        raise
                    outs.append(None)  # typed: allowed under chaos
            return outs

        outs = benchmark(round_trip)
        assert len(outs) == N_CLIENTS
