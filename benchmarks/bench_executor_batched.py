"""Batched FKW engine vs the seed per-sample path on a VGG-style stack.

The seed ``CompiledExecutor`` looped over batch samples in Python
(``np.stack([fn(sample) ...])``), scattered LRE partial sums through
``np.add.at``, re-padded every input, and ran bias/activation as two
extra array passes.  This bench reconstructs that engine faithfully (as
``SeedPerSampleExecutor``) and measures it against the reworked batched
executor — whole-batch kernels, scatter-free accumulation, fused
epilogue, and arena buffer reuse — at batch sizes 1 / 8 / 32.

Acceptance gate: batched execution at batch 8 is >= 3x the seed
per-sample path, with outputs matching ``ReferenceExecutor`` within
1e-4 across every opt level.
"""

import time

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.projections import project_connectivity, project_kernel_pattern
from repro.graph.ir import Graph, Node, OpKind, run_shape_inference
from repro.runtime import CompiledExecutor, ReferenceExecutor
from repro.runtime.ops import _apply_activation, eval_node

BATCH_SIZES = (1, 8, 32)
OPT_LEVELS = ("no-opt", "reorder", "lre", "gemm")

# VGG-style stack (CIFAR-scale blocks): two 32-wide convs, pool, two
# 64-wide convs, pool, classifier — every conv pattern+connectivity
# pruned and compiled through FKW.
_HW = 16
_CHANS = ((32, 3), (32, 32), (64, 32), (64, 64))


def _build_stack(seed=0):
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:8])
    g = Graph("vgg-style")
    g.add(Node("x", OpKind.INPUT, attrs={"shape": (_CHANS[0][1], _HW, _HW)}))
    prev = "x"
    assignments = {}
    hw = _HW
    for i, (f, c) in enumerate(_CHANS):
        w = (rng.standard_normal((f, c, 3, 3)) * np.sqrt(2.0 / (c * 9))).astype(np.float32)
        w, a = project_kernel_pattern(w, ps)
        w, m = project_connectivity(w, max(1, f * c // 4))
        name = f"conv{i}"
        g.add(
            Node(
                name,
                OpKind.CONV2D,
                inputs=[prev],
                attrs={"kernel_size": 3, "stride": 1, "padding": 1, "out_channels": f, "activation": "relu"},
                params={"weight": w, "bias": (rng.standard_normal(f) * 0.05).astype(np.float32)},
            )
        )
        assignments[name] = (a * m).astype(np.int32)
        prev = name
        if i in (1, 3):
            g.add(Node(f"pool{i}", OpKind.MAXPOOL, inputs=[prev], attrs={"kernel_size": 2}))
            prev = f"pool{i}"
            hw //= 2
    g.add(Node("flat", OpKind.FLATTEN, inputs=[prev]))
    feat = _CHANS[-1][0] * hw * hw
    g.add(
        Node(
            "fc",
            OpKind.LINEAR,
            inputs=["flat"],
            attrs={"out_features": 10},
            params={
                "weight": (rng.standard_normal((10, feat)) * 0.02).astype(np.float32),
                "bias": np.zeros(10, np.float32),
            },
        )
    )
    g.outputs = ["fc"]
    run_shape_inference(g)
    return g, ps, assignments


# ----------------------------------------------------------------------
# Faithful reconstruction of the seed engine (pre-batching rework)
# ----------------------------------------------------------------------
def _seed_lre_kernel(fkw, stride, padding):
    """The seed '+LRE' kernel: per-sample, np.add.at owner scatter."""
    f, c, kh, kw = fkw.shape
    k_total = fkw.num_kernels
    by_pattern = {}
    if k_total:
        kernel_owner = np.empty(k_total, dtype=np.int64)
        for pos in range(f):
            kernel_owner[fkw.filter_slice(pos)] = int(fkw.reorder[pos])
        for pid in range(1, len(fkw.pattern_set) + 1):
            sel = np.nonzero(fkw.pattern_ids == pid)[0]
            if len(sel) == 0:
                continue
            by_pattern[pid] = {
                "channels": fkw.index[sel].astype(np.int64),
                "owners": kernel_owner[sel],
                "weights": fkw.weights[sel],
                "coords": np.array(fkw.pattern_set[pid].coords, dtype=np.int64),
            }

    def fn(x):
        h, w = x.shape[1], x.shape[2]
        ho = (h + 2 * padding - kh) // stride + 1
        wo = (w + 2 * padding - kw) // stride + 1
        xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))  # unconditional
        out = np.zeros((f, ho, wo), dtype=np.float32)
        for _pid, meta in by_pattern.items():
            contrib = None
            for widx, (r, cc) in enumerate(meta["coords"]):
                patch = xp[meta["channels"], r : r + stride * ho : stride, cc : cc + stride * wo : stride]
                term = meta["weights"][:, widx][:, None, None] * patch
                contrib = term if contrib is None else contrib + term
            np.add.at(out, meta["owners"], contrib)
        return out

    return fn


class SeedPerSampleExecutor:
    """The seed CompiledExecutor: per-sample kernels, three-pass epilogue."""

    def __init__(self, graph, pattern_set, assignments):
        from repro.compiler.reorder import filter_kernel_reorder
        from repro.compiler.storage import FKWLayer

        self.graph = graph
        self._order = graph.toposort()
        self._compiled = {}
        for name, assignment in assignments.items():
            node = graph.nodes[name]
            fkw = FKWLayer.from_pruned(
                node.params["weight"], assignment, pattern_set, filter_kernel_reorder(assignment)
            )
            fn = _seed_lre_kernel(fkw, node.attrs.get("stride", 1), node.attrs.get("padding", 0))
            self._compiled[name] = (fn, node.params.get("bias"), node.attrs.get("activation"))

    def run(self, x):
        values = {}
        out = None
        for node in self._order:
            if node.op == OpKind.INPUT:
                values[node.name] = x.astype(np.float32)
                continue
            inputs = [values[i] for i in node.inputs]
            if node.name in self._compiled:
                fn, bias, activation = self._compiled[node.name]
                batch = np.stack([fn(sample) for sample in inputs[0]])
                if bias is not None:
                    batch += bias.reshape(1, -1, 1, 1)
                values[node.name] = _apply_activation(batch, activation)
            else:
                values[node.name] = eval_node(node, inputs)
            out = values[node.name]
        return values[self.graph.outputs[0]] if self.graph.outputs else out


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stack():
    g, ps, assignments = _build_stack()
    return g, ps, assignments


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(42)
    return {n: rng.standard_normal((n, _CHANS[0][1], _HW, _HW)).astype(np.float32) for n in BATCH_SIZES}


def _time(fn, reps=5):
    fn()  # warm-up (also warms kernel caches and the arena)
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_batched_executor_wallclock(benchmark, stack, inputs, batch):
    """pytest-benchmark timing of the batched engine per batch size."""
    g, ps, assignments = stack
    ex = CompiledExecutor(g, ps, assignments)
    x = inputs[batch]
    result = benchmark(ex.run, x)
    assert result.shape == (batch, 10)


def test_batched_beats_seed_per_sample(stack, inputs, request):
    """Acceptance gate: >= 3x over the seed engine at batch 8.

    Under ``--benchmark-disable`` (the scripts/check.sh fast pass) only
    the output-equality half runs: wallclock assertions on a loaded or
    BLAS-less CI box would fail spuriously and are benchmark-mode-only.
    """
    g, ps, assignments = stack
    seed_ex = SeedPerSampleExecutor(g, ps, assignments)
    new_ex = CompiledExecutor(g, ps, assignments)
    for batch in BATCH_SIZES:
        x = inputs[batch]
        np.testing.assert_allclose(seed_ex.run(x), new_ex.run(x), rtol=1e-4, atol=1e-4)
    if request.config.getoption("benchmark_disable"):
        pytest.skip("equality verified; wallclock gate needs benchmark mode")

    table = ResultTable(
        "executor-batched — batched FKW engine vs seed per-sample path",
        ["batch", "seed per-sample (ms)", "batched (ms)", "speedup"],
    )
    speedups = {}
    for batch in BATCH_SIZES:
        x = inputs[batch]
        t_seed = _time(lambda: seed_ex.run(x))
        t_new = _time(lambda: new_ex.run(x))
        speedups[batch] = t_seed / t_new
        table.add(batch, f"{t_seed * 1e3:.2f}", f"{t_new * 1e3:.2f}", f"{speedups[batch]:.2f}x")
    table.note("seed path: per-sample np.stack loop, np.add.at scatter, 3-pass epilogue")
    emit(table)
    assert speedups[8] >= 3.0, f"batch-8 speedup {speedups[8]:.2f}x < 3x"


def test_all_opt_levels_match_reference(stack, inputs):
    """Output parity with the reference interpreter across the matrix."""
    g, ps, assignments = stack
    ref = ReferenceExecutor(g)
    x = inputs[8]
    expected = ref.run(x)
    for opt_level in OPT_LEVELS:
        got = CompiledExecutor(g, ps, assignments, opt_level).run(x)
        np.testing.assert_allclose(
            got, expected, rtol=1e-4, atol=1e-4, err_msg=f"opt_level={opt_level}"
        )


def test_kernel_cache_and_arena_effective(stack, inputs):
    """Steady-state serving reuses buffers; pads are not reallocated."""
    g, ps, assignments = stack
    ex = CompiledExecutor(g, ps, assignments)
    for _ in range(4):
        ex.run(inputs[8])
    assert ex.arena.reuses > 0
    assert ex.arena.pad_reuses > 0
    # distinct shapes in this stack: every layer compiled exactly once
    assert ex.kernel_cache.misses == len(assignments)
