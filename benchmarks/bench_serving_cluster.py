"""Sharded multi-process serving vs the single-process micro-batcher.

PR 2's ``MicroBatchServer`` tops out at one Python process: one GIL, one
arena/kernel-cache domain.  ``ShardedServer`` replicates the compiled
engine across worker processes with shared-memory tensor transport, so
aggregate throughput should scale with cores.  This bench drives both
front-ends from 16 closed-loop client threads issuing 2-sample requests
against the same pattern-pruned CNN (rebuilt in every worker from one
``SessionSpec``).

Acceptance gates:

* **always** (including ``--benchmark-disable``): with one request in
  flight at a time, every shard's output is **bitwise equal** to
  ``session.run`` on the same request — the worker dispatches exactly
  the request's batch, so spec rebuild + shared-memory transport must
  be byte-transparent (same batch shape -> identical kernel
  arithmetic).  Under concurrent load, coalescing changes the BLAS
  batch shape, which legitimately perturbs float rounding (OpenBLAS
  picks kernels by matrix size), so the throughput phase verifies to
  1e-4 like the PR 2 serving bench.
* **benchmark mode, >= 2 usable cores**: the 4-shard cluster beats the
  single-process server by >= 1.5x req/s.  On a 1-core box the speedup
  is physically impossible (both configs share the core and the cluster
  adds IPC), so the ratio gate is skipped with an explanation — run the
  gate on a multi-core machine.
"""

import os
import threading
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.runtime import ServingConfig
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

N_SHARDS = 4
N_CLIENTS = 16
SAMPLES_PER_REQUEST = 2
IN_SIZE = 16
_CORES = len(os.sched_getaffinity(0))
# one BLAS thread per worker: 4 shards fighting over the machine with
# default thread pools oversubscribes wildly and measures the scheduler
_WORKER_ENV = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1"}


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("cluster-bench") / "bundle.npz"
    return projected_smallcnn_spec(
        str(bundle),
        channels=(32, 32, 64),
        in_size=IN_SIZE,
        serving_config=ServingConfig(max_batch=N_CLIENTS, max_wait_ms=4.0),
    )


@pytest.fixture(scope="module")
def local_session(spec):
    session = spec.build()
    yield session
    session.close()


@pytest.fixture(scope="module")
def requests_pool():
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal((SAMPLES_PER_REQUEST, 3, IN_SIZE, IN_SIZE)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]


@pytest.fixture(scope="module")
def cluster(spec):
    with ShardedServer(
        spec, num_shards=N_SHARDS, slots_per_shard=16, worker_env=_WORKER_ENV
    ) as server:
        yield server


def _closed_loop(submit, requests, per_client):
    """Each client submits its request and waits, in a closed loop."""
    results = {}
    errors = []
    gate = threading.Event()

    def client(i):
        try:
            gate.wait(10)
            for _ in range(per_client):
                results[i] = submit(requests[i]).result(timeout=120)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(len(requests))]
    for t in threads:
        t.start()
    start = time.perf_counter()
    gate.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, results


def test_sharded_outputs_bitwise_equal_to_session_run(local_session, cluster, requests_pool):
    """One request in flight at a time: the worker dispatches exactly this
    batch, so transport + spec rebuild must be bitwise-transparent."""
    for r in requests_pool[:8]:
        np.testing.assert_array_equal(cluster.run(r, timeout=120), local_session.run(r))


def test_cluster_beats_single_process(spec, local_session, cluster, requests_pool, request):
    """Acceptance gate: multi-process sharding wins req/s at 16 clients."""
    fast_pass = request.config.getoption("benchmark_disable")
    per_client = 4 if fast_pass else 16
    expected = [local_session.run(r) for r in requests_pool]

    t_single, out_single = _closed_loop(local_session.submit, requests_pool, per_client)
    t_cluster, out_cluster = _closed_loop(cluster.submit, requests_pool, per_client)

    # correctness under concurrency (coalesced batch shapes shift float
    # rounding; the bitwise gate is the sequential test above)
    for i in range(N_CLIENTS):
        np.testing.assert_allclose(out_single[i], expected[i], rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(out_cluster[i], expected[i], rtol=1e-4, atol=1e-5)

    total = N_CLIENTS * per_client
    stats = cluster.cluster_stats
    assert stats["requests"] >= total and stats["errors"] == 0
    assert stats["respawns"] == 0
    live_shards = [s for s in stats["shards"] if s["requests"] > 0]
    assert len(live_shards) == N_SHARDS  # the router actually spread the load

    if fast_pass:
        pytest.skip("correctness + routing verified; wallclock gate needs benchmark mode")

    thr_single = total / t_single
    thr_cluster = total / t_cluster
    table = ResultTable(
        f"serving-cluster — {N_CLIENTS} closed-loop clients, "
        f"{SAMPLES_PER_REQUEST}-sample requests, {_CORES} usable core(s)",
        ["front-end", "req/s", "wallclock (s)", "speedup"],
    )
    table.add("single-process MicroBatchServer", f"{thr_single:.0f}", f"{t_single:.3f}", "1.00x")
    table.add(
        f"ShardedServer ({N_SHARDS} shards)",
        f"{thr_cluster:.0f}",
        f"{t_cluster:.3f}",
        f"{thr_cluster / thr_single:.2f}x",
    )
    table.note("workers rebuild the session from one SessionSpec; tensors move over "
               "shared-memory slot rings; outputs bitwise-equal to session.run")
    emit(table)

    if _CORES < 2:
        pytest.skip(
            f"only {_CORES} usable core(s): multi-process scaling is physically "
            "impossible here — run the >=1.5x ratio gate on a multi-core box"
        )
    assert thr_cluster >= 1.5 * thr_single, (
        f"4-shard cluster at {thr_cluster:.0f} req/s did not reach 1.5x the "
        f"single-process {thr_single:.0f} req/s on {_CORES} cores"
    )


def test_cluster_round_trip_wallclock(benchmark, cluster, requests_pool):
    """pytest-benchmark timing of one 16-client cluster round trip."""

    def round_trip():
        futs = [cluster.submit(r) for r in requests_pool]
        return [f.result(timeout=120) for f in futs]

    outs = benchmark(round_trip)
    assert len(outs) == N_CLIENTS
    assert outs[0].shape == (SAMPLES_PER_REQUEST, 10)
