"""Benchmark-suite configuration.

Each ``bench_*`` module reproduces one table or figure of the paper:
the experiment itself runs once (cached in :mod:`repro.bench`), its
result table is printed to the terminal, and the ``benchmark`` fixture
times the experiment's characteristic kernel so `pytest-benchmark`
reports a meaningful, stable measurement.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def emit(table) -> None:
    """Print an experiment's result table beneath the bench output."""
    print()
    print(table.to_text())


@pytest.fixture(autouse=True)
def _show_tables(capsys):
    """Let result tables reach the terminal even without -s."""
    yield
    out, _ = capsys.readouterr()
    if out:
        with capsys.disabled():
            print(out, end="")
