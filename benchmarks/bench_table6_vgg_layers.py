"""Table 6 — VGG-16 unique CONV layer shapes."""

from conftest import emit

from repro.bench.registry import EXPERIMENTS
from repro.models.vgg import unique_layer_spec


def test_table6_vgg_layers(benchmark):
    benchmark(unique_layer_spec, "L8")
    table = EXPERIMENTS["table6"].run()
    emit(table)
    for row in table.rows:
        assert row[1] == row[2], f"shape mismatch for {row[0]}"
