"""Table 7 — pattern-count impact on latency (and accuracy shape).

Expected shape: latency grows mildly from 6 to 8 patterns and sharply at
12 (instruction-cache pressure); accuracy improves only slightly.
"""

from conftest import emit

from repro.bench.perf_experiments import _latency, table7_latency


def test_table7_pattern_counts(benchmark):
    table = table7_latency()  # heavy part cached before timing

    benchmark(_latency, "patdnn", "vgg16", "imagenet", "cpu", "snapdragon855", "pattern", 8)

    emit(table)
    cpu = {int(row[0]): float(row[1]) for row in table.rows}
    gpu = {int(row[0]): float(row[2]) for row in table.rows}
    for lat in (cpu, gpu):
        assert lat[8] < 1.25 * lat[6], "6->8 should be a mild increase"
        assert lat[12] > 1.3 * lat[8], "12 patterns should hit the latency cliff"
