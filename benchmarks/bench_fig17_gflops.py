"""Figure 17 — GFLOPS analysis: dense baseline quality and pattern vs dense.

Expected shape: (a) PatDNN's dense kernels beat MNN by 1.1-1.6x with
Winograd off; (b) pattern execution reaches dense-class GFLOPS on CPU
and wins on GPU.
"""

from conftest import emit

from repro.bench import paper
from repro.bench.perf_experiments import (
    _cost_model,
    _pruned_unique_layer,
    fig17_dense_vs_mnn,
    fig17_pattern_vs_dense,
)
from repro.hardware.cost_model import ConvWorkload


def test_fig17a_dense_vs_mnn(benchmark):
    spec, w, assignment, ps = _pruned_unique_layer("L7")
    cm = _cost_model("cpu")
    benchmark(cm.estimate, ConvWorkload.dense(spec, winograd=False))

    table = fig17_dense_vs_mnn()
    emit(table)
    for row in table.rows:
        advantage = float(row[3].rstrip("x"))
        lo, hi = paper.DENSE_ADVANTAGE
        assert paper.within(advantage, lo, hi, slack=0.35), f"{row[0]} advantage {advantage}"


def test_fig17b_pattern_vs_dense_gflops(benchmark):
    spec, w, assignment, ps = _pruned_unique_layer("L7")
    cm = _cost_model("gpu")
    benchmark(cm.estimate, ConvWorkload.dense(spec, winograd=False))

    table = fig17_pattern_vs_dense()
    emit(table)
    for row in table.rows[3:]:  # big layers carry the claim
        cpu_dense, cpu_pat = float(row[1]), float(row[2])
        gpu_dense, gpu_pat = float(row[3]), float(row[4])
        assert cpu_pat > 0.4 * cpu_dense, f"{row[0]}: CPU pattern GFLOPS collapsed"
        assert gpu_pat > 0.8 * gpu_dense, f"{row[0]}: GPU pattern should be dense-class or better"
