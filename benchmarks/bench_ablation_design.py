"""Ablation benches for the design choices DESIGN.md §6 calls out.

* FKR similarity chaining vs plain length-sort (intra-group ordering),
* LRE levels (kernel-only vs kernel+filter),
* GA tuner vs pure random search at equal budget,
* pattern-set size sweep beyond the paper's 6/8/12.
"""

import numpy as np
import pytest
from conftest import emit

from repro.bench.perf_experiments import _cost_model, _pruned_unique_layer
from repro.bench.reporting import ResultTable
from repro.compiler.compile import OptLevel, compile_layer, warp_divergence_factor
from repro.compiler.lre import count_register_loads
from repro.compiler.reorder import filter_kernel_reorder
from repro.compiler.storage import FKWLayer
from repro.compiler.tuner import GATuner, Schedule, ScheduleSpace
from repro.utils.rng import make_rng


def test_ablation_fkr_similarity_vs_sort(benchmark):
    """Greedy similarity chaining should align wavefronts at least as
    well as a plain signature sort."""
    spec, w, assignment, ps = _pruned_unique_layer("L4")
    benchmark(filter_kernel_reorder, assignment, 256)

    greedy = filter_kernel_reorder(assignment, greedy_limit=512)
    sorted_only = filter_kernel_reorder(assignment, greedy_limit=0)
    div_greedy = warp_divergence_factor(greedy, wavefront=64)
    div_sorted = warp_divergence_factor(sorted_only, wavefront=64)

    table = ResultTable("Ablation — FKR intra-group ordering", ["method", "warp divergence"])
    table.add("greedy similarity chain", f"{div_greedy:.2f}")
    table.add("signature sort only", f"{div_sorted:.2f}")
    emit(table)
    assert div_greedy <= div_sorted * 1.05


def test_ablation_lre_levels(benchmark):
    """Filter-level elimination must add savings on top of kernel-level."""
    spec, w, assignment, ps = _pruned_unique_layer("L6")
    fkw = FKWLayer.from_pruned(w, assignment, ps)
    loads = benchmark(count_register_loads, fkw, spec.out_hw)

    table = ResultTable("Ablation — LRE levels (L6)", ["level", "loads", "vs no-LRE"])
    table.add("none", loads.no_lre, "1.00x")
    table.add("kernel", loads.kernel_lre, f"{loads.no_lre / loads.kernel_lre:.2f}x")
    table.add("kernel+filter", loads.filter_lre, f"{loads.no_lre / loads.filter_lre:.2f}x")
    emit(table)
    assert loads.filter_lre < loads.kernel_lre < loads.no_lre


def test_ablation_ga_vs_random(benchmark):
    """At an equal evaluation budget the GA should match or beat random
    search (it exploits structure; random only explores)."""
    spec, w, assignment, ps = _pruned_unique_layer("L8")
    cm = _cost_model("cpu")
    cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
    space = ScheduleSpace.for_layer(spec.out_channels, spec.out_hw)
    tuner = GATuner(cm, population=16, generations=8, seed=11)
    result = benchmark(tuner.tune, cl.workload, space)

    rng = make_rng(12)
    budget = 16 * 9
    random_best = min(
        cm.estimate(cl.workload, space.random(rng).to_sched_params()).total_ms for _ in range(budget)
    )
    table = ResultTable("Ablation — tuner search strategy (L8)", ["strategy", "best ms"])
    table.add("GA (16x8)", f"{result.best_ms:.3f}")
    table.add(f"random ({budget})", f"{random_best:.3f}")
    emit(table)
    assert result.best_ms <= random_best * 1.02


def test_ablation_pattern_set_size_sweep(benchmark):
    """Extend Table 7 beyond the paper: k in 4..56."""
    from repro.bench.perf_experiments import _pruned_unique_layer as layer_for

    cm = _cost_model("cpu")
    table = ResultTable(
        "Ablation — pattern count sweep (L6, estimated latency)",
        ["k", "latency ms", "distortion proxy"],
    )
    results = {}
    for k in (4, 6, 8, 12, 16, 56):
        spec, w, assignment, ps = layer_for("L6", num_patterns=k)
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        # distortion proxy: energy lost by projection from the raw weights
        raw = spec.make_weights(make_rng(1))
        lost = 1.0 - float((w**2).sum() / (raw**2).sum())
        results[k] = cl.estimated_ms
        table.add(k, f"{cl.estimated_ms:.3f}", f"{lost:.3f}")
    emit(table)
    benchmark(lambda: compile_layer(*layer_for("L6", num_patterns=8)[:4], cm, OptLevel.LRE))
    assert results[56] > results[8], "huge pattern sets must pay the i-cache cliff"
    assert results[8] <= results[4] * 1.4
