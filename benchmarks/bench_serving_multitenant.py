"""Consolidated multi-tenant cluster vs dedicated per-model clusters.

The multi-tenant registry exists so one cluster can serve a model zoo
without paying a per-model cluster tax: every worker builds all tenants
over one shared kernel cache and buffer arena, and each tenant gets its
own micro-batch queue.  The fair alternative at **equal core budget** is
splitting the shards into dedicated single-model clusters.  This bench
runs both shapes with the same client population — two models, half the
clients pinned to each — and compares per-model router p50.

Acceptance gates:

* **always** (including ``--benchmark-disable``): every response in
  both shapes is **bitwise equal** to the owning model's own
  ``session.run`` — serving is batch-invariant, so consolidation can
  never change a tenant's numbers; zero errors; and the consolidated
  run's per-model request counters account for every request.
* **benchmark mode, >= 2 usable cores**: per-model router p50 on the
  consolidated cluster stays within **1.3x** of the dedicated cluster
  for the same model (the co-tenancy tax must be small — shared compile
  cache and per-tenant queues are doing their job).  On a 1-core box
  every shape just measures scheduler thrash, so the ratio gate is
  skipped with an explanation.
"""

import os
import threading

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.runtime import ServingConfig
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

N_SHARDS = 4          # consolidated budget; dedicated clusters get half each
N_CLIENTS = 16        # half per model in both shapes
SAMPLES_PER_REQUEST = 2
IN_SIZE = 16
_CORES = len(os.sched_getaffinity(0))
_WORKER_ENV = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1"}
MODELS = ("small", "large")
P50_RATIO_GATE = 1.3


@pytest.fixture(scope="module")
def specs(tmp_path_factory):
    root = tmp_path_factory.mktemp("multitenant-bench")
    cfg = ServingConfig(max_batch=N_CLIENTS // 2, max_wait_ms=4.0)
    return {
        "small": projected_smallcnn_spec(
            str(root / "small.npz"), channels=(16, 32), in_size=IN_SIZE,
            seed=11, serving_config=cfg,
        ),
        "large": projected_smallcnn_spec(
            str(root / "large.npz"), channels=(32, 32, 64), in_size=IN_SIZE,
            seed=22, serving_config=cfg,
        ),
    }


@pytest.fixture(scope="module")
def oracle(specs):
    sessions = {name: spec.build() for name, spec in specs.items()}
    yield sessions
    for session in sessions.values():
        session.close()


@pytest.fixture(scope="module")
def requests_pool():
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal(
            (SAMPLES_PER_REQUEST, 3, IN_SIZE, IN_SIZE)
        ).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]


def _drive(submit_for, requests, model_of, per_client):
    """Closed-loop clients, client i pinned to ``model_of[i]``; returns
    the last result per client (errors surface)."""
    results = {}
    errors = []
    gate = threading.Event()

    def client(i):
        try:
            gate.wait(10)
            submit = submit_for(model_of[i])
            for _ in range(per_client):
                results[i] = submit(requests[i]).result(timeout=120)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(len(requests))]
    for t in threads:
        t.start()
    gate.set()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


def test_consolidated_within_p50_ratio_of_dedicated(
    specs, oracle, requests_pool, request
):
    fast_pass = request.config.getoption("benchmark_disable")
    per_client = 4 if fast_pass else 16
    model_of = [MODELS[i % 2] for i in range(N_CLIENTS)]
    expected = [oracle[model_of[i]].run(r) for i, r in enumerate(requests_pool)]

    def check_bitwise(results, label):
        for i in range(N_CLIENTS):
            assert np.array_equal(results[i], expected[i]), (
                f"{label}: client {i} ({model_of[i]}) response is not bitwise "
                "equal to the model's own session.run"
            )

    # --- dedicated: one half-size cluster per model, run CONCURRENTLY
    # (they share the machine, exactly like the consolidated shape does)
    dedicated_p50 = {}
    with ShardedServer(
        specs={"small": specs["small"]}, num_shards=N_SHARDS // 2,
        slots_per_shard=16, worker_env=_WORKER_ENV,
    ) as small_srv, ShardedServer(
        specs={"large": specs["large"]}, num_shards=N_SHARDS // 2,
        slots_per_shard=16, worker_env=_WORKER_ENV,
    ) as large_srv:
        servers = {"small": small_srv, "large": large_srv}
        results = _drive(
            lambda m: servers[m].submit, requests_pool, model_of, per_client
        )
        check_bitwise(results, "dedicated")
        for name, srv in servers.items():
            stats = srv.cluster_stats
            assert stats["errors"] == 0
            dedicated_p50[name] = stats["models"][name]["router_p50_ms"]

    # --- consolidated: one cluster, full shard budget, both tenants
    with ShardedServer(
        specs=dict(specs), num_shards=N_SHARDS,
        slots_per_shard=16, worker_env=_WORKER_ENV,
    ) as server:
        results = _drive(
            lambda m: (lambda r, _m=m: server.submit(r, model=_m)),
            requests_pool, model_of, per_client,
        )
        check_bitwise(results, "consolidated")
        stats = server.cluster_stats
        assert stats["errors"] == 0
        per_model_requests = N_CLIENTS // 2 * per_client
        for name in MODELS:
            assert stats["models"][name]["requests"] == per_model_requests, (
                f"consolidated cluster lost track of {name} requests"
            )
        shared_p50 = {
            name: stats["models"][name]["router_p50_ms"] for name in MODELS
        }

    if fast_pass:
        pytest.skip("bitwise + accounting verified; p50 ratio gate needs benchmark mode")

    table = ResultTable(
        f"serving-multitenant — {N_CLIENTS} clients over 2 models, "
        f"{N_SHARDS}-shard budget, {_CORES} usable core(s)",
        ["model", "dedicated p50 (ms)", "consolidated p50 (ms)", "ratio"],
    )
    for name in MODELS:
        ratio = (
            shared_p50[name] / dedicated_p50[name] if dedicated_p50[name] else 0.0
        )
        table.add(name, f"{dedicated_p50[name]:.2f}", f"{shared_p50[name]:.2f}",
                  f"{ratio:.2f}x")
    table.note("equal core budget: two dedicated half-size clusters running "
               "concurrently vs one consolidated cluster serving both tenants; "
               "outputs bitwise-equal to session.run in every shape")
    emit(table)

    if _CORES < 2:
        pytest.skip(
            f"only {_CORES} usable core(s): every shape measures scheduler "
            "thrash here — run the p50 ratio gate on a multi-core box"
        )
    for name in MODELS:
        assert shared_p50[name] <= P50_RATIO_GATE * dedicated_p50[name], (
            f"model {name!r}: consolidated p50 {shared_p50[name]:.2f} ms "
            f"exceeds {P50_RATIO_GATE}x the dedicated {dedicated_p50[name]:.2f} ms"
        )
