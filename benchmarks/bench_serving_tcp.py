"""Transport overhead: shared-memory slot rings vs loopback TCP framing.

The cluster router speaks an abstract ``ShardTransport`` protocol, so
the same router / resilience / chaos machinery can drive shards over
shared memory (single host) or framed TCP sockets (any host).  The seam
is only worth having if (a) TCP is *correct to the bit* and (b) its
overhead on loopback is a bounded, measured quantity — this bench pins
both.

Acceptance gates:

* **always** (including ``--benchmark-disable``): with one request in
  flight at a time, the loopback-TCP cluster's outputs are **bitwise
  equal** to ``session.run`` on the same requests — framing (pack /
  CRC / unpack) plus spec rebuild must be byte-transparent, exactly
  like the shm transport's gate in ``bench_serving_cluster.py``.
* **benchmark mode**: the shm-vs-TCP throughput table is emitted, and
  loopback TCP must stay within a generous 10x of shm req/s — TCP adds
  syscalls and copies (that's the measured overhead), but anything past
  that bound means the transport is broken (e.g. accidental
  per-request reconnects), not just slower.
"""

import os
import threading
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.runtime import ServingConfig
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

N_SHARDS = 2
N_CLIENTS = 8
SAMPLES_PER_REQUEST = 2
IN_SIZE = 16
_CORES = len(os.sched_getaffinity(0))
_WORKER_ENV = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1"}


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("tcp-bench") / "bundle.npz"
    return projected_smallcnn_spec(
        str(bundle),
        channels=(32, 32, 64),
        in_size=IN_SIZE,
        serving_config=ServingConfig(max_batch=N_CLIENTS, max_wait_ms=4.0),
    )


@pytest.fixture(scope="module")
def local_session(spec):
    session = spec.build()
    yield session
    session.close()


@pytest.fixture(scope="module")
def requests_pool():
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal((SAMPLES_PER_REQUEST, 3, IN_SIZE, IN_SIZE)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]


def _closed_loop(submit, requests, per_client):
    results = {}
    errors = []
    gate = threading.Event()

    def client(i):
        try:
            gate.wait(10)
            for _ in range(per_client):
                results[i] = submit(requests[i]).result(timeout=120)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(len(requests))]
    for t in threads:
        t.start()
    start = time.perf_counter()
    gate.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, results


def test_tcp_outputs_bitwise_equal_to_session_run(spec, local_session, requests_pool):
    """One request in flight at a time over loopback TCP: frame pack +
    CRC + unpack + spec rebuild must be byte-transparent."""
    with ShardedServer(
        spec, num_shards=N_SHARDS, transport="tcp", worker_env=_WORKER_ENV
    ) as server:
        for r in requests_pool:
            np.testing.assert_array_equal(server.run(r, timeout=120), local_session.run(r))
        stats = server.cluster_stats
    assert stats["transport"] == "tcp"
    assert stats["errors"] == 0 and stats["corrupt"] == 0


def test_tcp_overhead_vs_shm(spec, local_session, requests_pool, request):
    """Measure the same closed-loop workload over both transports and
    report the loopback-TCP overhead."""
    fast_pass = request.config.getoption("benchmark_disable")
    per_client = 4 if fast_pass else 16
    expected = [local_session.run(r) for r in requests_pool]
    total = N_CLIENTS * per_client

    measured = {}
    for transport in ("shm", "tcp"):
        with ShardedServer(
            spec, num_shards=N_SHARDS, transport=transport, worker_env=_WORKER_ENV
        ) as server:
            elapsed, results = _closed_loop(server.submit, requests_pool, per_client)
            stats = server.cluster_stats
        for i in range(N_CLIENTS):
            np.testing.assert_allclose(results[i], expected[i], rtol=1e-4, atol=1e-5)
        assert stats["requests"] == total and stats["errors"] == 0
        assert stats["respawns"] == 0 and stats["corrupt"] == 0
        measured[transport] = (total / elapsed, elapsed, stats)

    if fast_pass:
        pytest.skip("correctness verified on both transports; overhead table needs benchmark mode")

    thr_shm, t_shm, _ = measured["shm"]
    thr_tcp, t_tcp, stats_tcp = measured["tcp"]
    table = ResultTable(
        f"serving transport overhead — {N_CLIENTS} closed-loop clients, "
        f"{SAMPLES_PER_REQUEST}-sample requests, {N_SHARDS} shards, "
        f"{_CORES} usable core(s)",
        ["transport", "req/s", "wallclock (s)", "relative"],
    )
    table.add("shm slot rings", f"{thr_shm:.0f}", f"{t_shm:.3f}", "1.00x")
    table.add("loopback TCP frames", f"{thr_tcp:.0f}", f"{t_tcp:.3f}",
              f"{thr_tcp / thr_shm:.2f}x")
    table.note("same router, resilience, and worker body on both rows — only the "
               "transport implementation differs; TCP pays syscalls + copies per frame; "
               f"router p95 over TCP: {stats_tcp['router_p95_ms']:.2f} ms")
    emit(table)

    assert thr_tcp * 10 >= thr_shm, (
        f"loopback TCP at {thr_tcp:.0f} req/s is more than 10x slower than shm at "
        f"{thr_shm:.0f} req/s — that is transport breakage, not framing overhead"
    )


def test_tcp_round_trip_wallclock(benchmark, spec, requests_pool):
    """pytest-benchmark timing of one closed-loop round trip over TCP."""
    with ShardedServer(
        spec, num_shards=N_SHARDS, transport="tcp", worker_env=_WORKER_ENV
    ) as server:

        def round_trip():
            futs = [server.submit(r) for r in requests_pool]
            return [f.result(timeout=120) for f in futs]

        outs = benchmark(round_trip)
    assert len(outs) == N_CLIENTS
    assert outs[0].shape == (SAMPLES_PER_REQUEST, 10)
