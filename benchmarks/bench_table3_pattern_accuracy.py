"""Table 3 — accuracy vs pattern-set size (kernel pattern pruning only).

Expected shape: pruning every kernel to a 4-entry pattern (2.25× fewer
conv weights) keeps accuracy near the dense baseline for k in 6/8/12.
"""

from conftest import emit

from repro.bench.accuracy_experiments import table3_pattern_accuracy
from repro.core.patterns import mine_pattern_set
from repro.core.projections import project_kernel_pattern
from repro.models import build_small_cnn


def test_table3_pattern_accuracy(benchmark):
    model = build_small_cnn(channels=(16, 32), in_size=12)
    tensors = [
        m.weight.data
        for _, m in model.named_modules()
        if hasattr(m, "weight") and m.weight is not None and m.weight.data.ndim == 4
    ]
    ps = mine_pattern_set(tensors, k=8)
    benchmark(project_kernel_pattern, tensors[-1], ps)

    table = table3_pattern_accuracy(fast=True)
    emit(table)
    acc = {row[0]: float(row[1]) for row in table.rows}
    base = acc["original"]
    for k in (6, 8, 12):
        assert acc[f"{k}-pattern"] > base - 12.0, f"{k}-pattern collapsed vs baseline"
