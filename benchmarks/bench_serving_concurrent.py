"""Concurrent serving: micro-batched dispatch vs per-request dispatch.

PatDNN's batched ``gemm`` kernels amortise one BLAS contraction per
pattern-union coordinate over the whole batch, so serving throughput
hinges on actually *forming* batches out of concurrent single-sample
traffic.  This bench stands up two :class:`MicroBatchServer` front-ends
over one shared ``CompiledExecutor`` — one with ``max_batch=1`` (every
request dispatched alone, the pre-serving behaviour) and one with
``max_batch=16`` — and hammers each with closed-loop client threads
submitting single samples.

Acceptance gate: at >= 8 concurrent clients the micro-batched front-end
beats per-request dispatch on throughput, with outputs matching the
reference interpreter.  Under ``--benchmark-disable`` only correctness
and coalescing-behaviour assertions run (wallclock gates on loaded CI
boxes fail spuriously and are benchmark-mode-only).
"""

import threading
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import ResultTable
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.projections import project_connectivity, project_kernel_pattern
from repro.graph.ir import Graph, Node, OpKind, run_shape_inference
from repro.runtime import CompiledExecutor, MicroBatchServer, ReferenceExecutor, ServingConfig

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 24
_HW = 16
_CHANS = ((32, 3), (32, 32), (64, 32))


def _build_stack(seed=0):
    """VGG-ish pruned conv stack (same recipe as bench_executor_batched)."""
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:8])
    g = Graph("serving-stack")
    g.add(Node("x", OpKind.INPUT, attrs={"shape": (_CHANS[0][1], _HW, _HW)}))
    prev = "x"
    assignments = {}
    hw = _HW
    for i, (f, c) in enumerate(_CHANS):
        w = (rng.standard_normal((f, c, 3, 3)) * np.sqrt(2.0 / (c * 9))).astype(np.float32)
        w, a = project_kernel_pattern(w, ps)
        w, m = project_connectivity(w, max(1, f * c // 4))
        name = f"conv{i}"
        g.add(
            Node(
                name,
                OpKind.CONV2D,
                inputs=[prev],
                attrs={"kernel_size": 3, "stride": 1, "padding": 1, "out_channels": f, "activation": "relu"},
                params={"weight": w, "bias": (rng.standard_normal(f) * 0.05).astype(np.float32)},
            )
        )
        assignments[name] = (a * m).astype(np.int32)
        prev = name
        if i == 1:
            g.add(Node(f"pool{i}", OpKind.MAXPOOL, inputs=[prev], attrs={"kernel_size": 2}))
            prev = f"pool{i}"
            hw //= 2
    g.add(Node("flat", OpKind.FLATTEN, inputs=[prev]))
    feat = _CHANS[-1][0] * hw * hw
    g.add(
        Node(
            "fc",
            OpKind.LINEAR,
            inputs=["flat"],
            attrs={"out_features": 10},
            params={
                "weight": (rng.standard_normal((10, feat)) * 0.02).astype(np.float32),
                "bias": np.zeros(10, np.float32),
            },
        )
    )
    g.outputs = ["fc"]
    run_shape_inference(g)
    return g, ps, assignments


@pytest.fixture(scope="module")
def stack():
    return _build_stack()


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal((1, _CHANS[0][1], _HW, _HW)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]


def _serve_closed_loop(server, samples, requests_per_client):
    """Each client thread submits its sample and waits, in a closed loop.

    Returns (wallclock seconds, {client: last output}).
    """
    results = {}
    errors = []
    start_gate = threading.Event()

    def client(i):
        try:
            start_gate.wait(10)
            for _ in range(requests_per_client):
                results[i] = server.submit(samples[i]).result(timeout=60)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(len(samples))]
    for t in threads:
        t.start()
    start = time.perf_counter()
    start_gate.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, results


def test_microbatched_beats_per_request_dispatch(stack, samples, request):
    """Acceptance gate: micro-batching wins throughput at 8 clients."""
    g, ps, assignments = stack
    executor = CompiledExecutor(g, ps, assignments)
    ref = ReferenceExecutor(g)
    expected = [ref.run(x) for x in samples]

    per_request_cfg = ServingConfig(max_batch=1, max_wait_ms=0)
    # max_batch == client count: with closed-loop clients (one outstanding
    # request each) the batch fills immediately instead of idling out the
    # wait window hoping for a request that can never arrive
    batched_cfg = ServingConfig(max_batch=N_CLIENTS, max_wait_ms=4.0)

    with MicroBatchServer(executor.run, per_request_cfg) as server:
        t_single, out_single = _serve_closed_loop(server, samples, REQUESTS_PER_CLIENT)
        single_stats = server.stats
    with MicroBatchServer(executor.run, batched_cfg) as server:
        t_batched, out_batched = _serve_closed_loop(server, samples, REQUESTS_PER_CLIENT)
        batched_stats = server.stats

    # correctness: both dispatch modes serve the right numbers
    for i in range(N_CLIENTS):
        np.testing.assert_allclose(out_single[i], expected[i], rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(out_batched[i], expected[i], rtol=1e-4, atol=1e-4)

    total = N_CLIENTS * REQUESTS_PER_CLIENT
    assert single_stats.requests == batched_stats.requests == total
    # per-request mode never coalesced; batched mode actually did
    assert single_stats.mean_batch == 1.0
    assert batched_stats.mean_batch > 1.5
    assert batched_stats.batches < total

    if request.config.getoption("benchmark_disable"):
        pytest.skip("correctness + coalescing verified; wallclock gate needs benchmark mode")

    thr_single = total / t_single
    thr_batched = total / t_batched
    table = ResultTable(
        f"serving-concurrent — {N_CLIENTS} closed-loop clients, single-sample requests",
        ["front-end", "req/s", "wallclock (s)", "mean batch", "dispatches"],
    )
    table.add("per-request (max_batch=1)", f"{thr_single:.0f}", f"{t_single:.3f}",
              f"{single_stats.mean_batch:.2f}", single_stats.batches)
    table.add(f"micro-batched (max_batch={N_CLIENTS})", f"{thr_batched:.0f}", f"{t_batched:.3f}",
              f"{batched_stats.mean_batch:.2f}", batched_stats.batches)
    table.note("shared CompiledExecutor (gemm level); batching amortises one BLAS "
               "contraction per pattern-union coordinate across the whole micro-batch")
    emit(table)
    assert thr_batched > thr_single, (
        f"micro-batched throughput {thr_batched:.0f} req/s did not beat "
        f"per-request {thr_single:.0f} req/s at {N_CLIENTS} clients"
    )


def test_serving_dispatch_wallclock(benchmark, stack, samples):
    """pytest-benchmark timing of one coalesced dispatch round."""
    g, ps, assignments = stack
    executor = CompiledExecutor(g, ps, assignments)
    server = MicroBatchServer(executor.run, ServingConfig(max_batch=N_CLIENTS, max_wait_ms=4.0))

    def round_trip():
        futs = [server.submit(x) for x in samples]
        return [f.result(timeout=60) for f in futs]

    outs = benchmark(round_trip)
    server.close()
    assert len(outs) == N_CLIENTS and outs[0].shape == (1, 10)
