"""Table 4 — joint pattern+connectivity vs baseline pruning schemes.

Expected shape: 'ours' reaches ADMM-NN-class compression (~8×) at
equal-or-better accuracy, beating the heuristic baselines' trade-off.
"""

from conftest import emit

from repro.bench.accuracy_experiments import table4_compression
from repro.core.projections import project_connectivity
from repro.models import build_small_cnn


def test_table4_compression(benchmark):
    model = build_small_cnn(channels=(16, 32), in_size=12)
    w = None
    for _, m in model.named_modules():
        if hasattr(m, "weight") and m.weight is not None and m.weight.data.ndim == 4:
            w = m.weight.data
    benchmark(project_connectivity, w, max(1, (w.shape[0] * w.shape[1]) // 4))

    table = table4_compression(fast=True)
    emit(table)
    rows = {row[0]: row for row in table.rows}
    ours_rate = float(rows["ours (8-pattern + connectivity)"][2].rstrip("x"))
    assert ours_rate > 6.5  # 2.25 x ~3.3 effective (first layer gentler)
