"""Figure 16 — FKW vs CSR extra-structure overhead at 8x/12x/18x.

Expected shape: FKW's index structures are a small fraction of CSR's
(paper: 6.6-12.1% depending on rate; kernel-level vs weight-level
indexing is the mechanism).
"""

from conftest import emit

from repro.bench.perf_experiments import _pruned_unique_layer, fig16_fkw_vs_csr
from repro.compiler.storage import CSRLayer, FKWLayer


def test_fig16_fkw_vs_csr(benchmark):
    spec, w, assignment, ps = _pruned_unique_layer("L8")

    def pack_both():
        FKWLayer.from_pruned(w, assignment, ps)
        CSRLayer.from_dense(w)

    benchmark(pack_both)

    table = fig16_fkw_vs_csr()
    emit(table)
    all_row = table.rows[-1]
    for cell in all_row[1:]:
        ratio = float(cell.rstrip("%"))
        assert ratio < 25.0, f"aggregate FKW/CSR ratio {ratio}% too high"
    # Large layers must beat 20%.
    l8 = next(r for r in table.rows if r[0] == "L8")
    assert float(l8[1].rstrip("%")) < 20.0
