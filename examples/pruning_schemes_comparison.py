"""Compare pruning schemes on accuracy *and* simulated speed (Table 2 / 4).

Trains one base CNN, then prunes it five ways — magnitude (Deep
Compression), grow-and-prune (NeST), ADMM non-structured (ADMM-NN),
structured filter pruning, and PatDNN's pattern+connectivity — and
reports accuracy, compression, and simulated Snapdragon-855 latency for
each, reproducing the paper's design-space argument: only pattern-based
pruning gets *both* accuracy and speed.

Run:  python examples/pruning_schemes_comparison.py
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.bench.trainutil import clone_pretrained, pretrained_workbench
from repro.core import PatDNNPruner, PruningConfig
from repro.core.baselines import ADMMUnstructuredPruner, MagnitudePruner, StructuredPruner
from repro.core.metrics import compression_rate
from repro.frameworks import get_engine
from repro.hardware import SNAPDRAGON_855
from repro.models.spec import ConvSpec, ModelSpec


def _sim_latency(mode: str, rate: float) -> float:
    """Simulated latency of a VGG-class layer under each execution mode."""
    spec = ModelSpec(
        "probe", "synthetic", [ConvSpec("c", 128, 128, 3, padding=1, in_hw=28)], total_layers=1
    )
    if mode == "dense-small":
        # structured pruning shrinks the dense layer itself
        shrunk = ModelSpec(
            "probe", "synthetic",
            [ConvSpec("c", 128, max(8, int(128 / rate)), 3, padding=1, in_hw=28)],
            total_layers=1,
        )
        return get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="dense").prepare(shrunk).latency_ms
    if mode == "csr":
        return get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="csr").prepare(spec).latency_ms
    if mode == "pattern":
        return get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="pattern").prepare(spec).latency_ms
    return get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="dense").prepare(spec).latency_ms


def main():
    print("pre-training shared base model...")
    wb, state = pretrained_workbench()
    base_acc = wb.accuracy(clone_pretrained(wb, state)) * 100
    print(f"dense baseline accuracy: {base_acc:.1f}%")

    table = ResultTable(
        "Pruning schemes on one base CNN (+ simulated VGG-layer latency)",
        ["scheme", "accuracy %", "conv compression", "sim latency ms", "exec mode"],
    )
    table.add("dense", f"{base_acc:.1f}", "1.0x", f"{_sim_latency('dense', 1):.2f}", "dense")

    print("magnitude (Deep Compression)...")
    m = clone_pretrained(wb, state)
    MagnitudePruner(rate=8.0, steps=3, retrain_epochs=3).prune(m, wb.loader)
    table.add("magnitude 8x", f"{wb.accuracy(m) * 100:.1f}", f"{compression_rate(m):.1f}x",
              f"{_sim_latency('csr', 8):.2f}", "CSR (irregular)")

    print("ADMM non-structured (ADMM-NN)...")
    m = clone_pretrained(wb, state)
    ADMMUnstructuredPruner(rate=8.0, iterations=4, retrain_epochs=3).prune(m, wb.loader)
    table.add("ADMM non-structured 8x", f"{wb.accuracy(m) * 100:.1f}", f"{compression_rate(m):.1f}x",
              f"{_sim_latency('csr', 8):.2f}", "CSR (irregular)")

    print("structured filter pruning...")
    m = clone_pretrained(wb, state)
    StructuredPruner(rate=4.0, granularity="filter", retrain_epochs=3).prune(m, wb.loader)
    table.add("filter 4x", f"{wb.accuracy(m) * 100:.1f}", f"{compression_rate(m):.1f}x",
              f"{_sim_latency('dense-small', 4):.2f}", "dense (smaller)")

    print("PatDNN pattern + connectivity...")
    m = clone_pretrained(wb, state)
    cfg = PruningConfig(num_patterns=8, connectivity_rate=3.6, retrain_epochs=4)
    cfg.admm.iterations = 4
    PatDNNPruner(cfg).fit(m, wb.loader)
    table.add("pattern+connectivity 8x", f"{wb.accuracy(m) * 100:.1f}", f"{compression_rate(m):.1f}x",
              f"{_sim_latency('pattern', 8):.2f}", "FKW compiled")

    print()
    print(table.to_text())
    print(
        "\nreading: structured pruning is fast but loses accuracy; non-structured"
        "\nkeeps accuracy but CSR execution wastes the computation reduction;"
        "\npattern+connectivity (with the compiler) gets both."
    )


if __name__ == "__main__":
    main()
