"""Auto-tune one pruned VGG layer with the GA explorer (§5.5).

Shows the tuner's moving parts: the schedule space, GA convergence per
generation, the trained MLP performance estimator, and a cross-device
warm start (predicting good Snapdragon 845 schedules from 855 history).

Run:  python examples/autotune_layer.py
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.compiler.compile import OptLevel, compile_layer, prune_spec_layer
from repro.compiler.tuner import GATuner, PerformanceEstimator, Schedule, ScheduleSpace
from repro.core.patterns import mine_pattern_set
from repro.hardware import SNAPDRAGON_845, SNAPDRAGON_855
from repro.hardware.cost_model import ConvCostModel
from repro.models.vgg import unique_layer_spec
from repro.utils.rng import make_rng


def main():
    spec = unique_layer_spec("L6")
    w0 = spec.make_weights(make_rng(0))
    pattern_set = mine_pattern_set([w0], k=8)
    weights, assignment = prune_spec_layer(spec, pattern_set, 3.6, weights=w0)

    cm855 = ConvCostModel(SNAPDRAGON_855, "cpu", utilization=0.42, sparse_efficiency=0.7)
    layer = compile_layer(spec, weights, assignment, pattern_set, cm855, OptLevel.LRE)
    space = ScheduleSpace.for_layer(spec.out_channels, spec.out_hw)
    print(f"layer {spec.name}: schedule space has {space.size():,} configurations")
    default_ms = cm855.estimate(layer.workload, Schedule.default().to_sched_params()).total_ms
    print(f"default schedule: {default_ms:.3f} ms")

    print("\n== GA exploration (population 24) ==")
    tuner = GATuner(cm855, population=24, generations=12, seed=7)
    result = tuner.tune(layer.workload, space)
    per_gen = [
        min(ms for _, ms in result.history[g * 24 : (g + 1) * 24])
        for g in range(result.generations)
    ]
    for g, best in enumerate(per_gen):
        print(f"  gen {g:2d}: best {best:.3f} ms")
    print(f"GA best: {result.best_ms:.3f} ms  ({default_ms / result.best_ms:.2f}x over default)")
    print(f"best schedule: {result.best}")

    print("\n== MLP performance estimator ==")
    estimator = PerformanceEstimator(seed=3)
    rmse = estimator.fit(result.history, layer.workload)
    print(f"fit on {len(result.history)} samples, RMSE {rmse:.3f} (log-ms)")

    print("\n== warm start on a new device (Snapdragon 845) ==")
    cm845 = ConvCostModel(SNAPDRAGON_845, "cpu", utilization=0.42, sparse_efficiency=0.7)
    rng = make_rng(9)
    candidates = [space.random(rng) for _ in range(64)]
    pick = estimator.best_of(candidates, layer.workload)
    table = ResultTable("845 schedules (no new search)", ["schedule", "actual ms on 845"])
    table.add("default", f"{cm845.estimate(layer.workload, Schedule.default().to_sched_params()).total_ms:.3f}")
    table.add("estimator pick", f"{cm845.estimate(layer.workload, pick.to_sched_params()).total_ms:.3f}")
    table.add("855-tuned best", f"{cm845.estimate(layer.workload, result.best.to_sched_params()).total_ms:.3f}")
    print(table.to_text())


if __name__ == "__main__":
    main()
