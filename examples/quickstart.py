"""Quickstart: prune a small CNN with PatDNN and run it compiled.

Walks the whole pipeline on laptop-scale inputs in under a minute:

1. train a small CNN on the synthetic CIFAR-10 stand-in,
2. run pattern-based pruning (8 patterns + 2x connectivity, ADMM),
3. compile the pruned model and execute it through the FKW kernels,
4. compare accuracy and simulated mobile latency before/after.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.core import PatDNNPruner, PruningConfig
from repro.core.metrics import evaluate_accuracy
from repro.data import DataLoader, make_cifar10_like
from repro.models import build_small_cnn
from repro.optim import Adam
from repro.runtime import InferenceSession
from repro.utils.rng import make_rng


def pretrain(model, loader, epochs=10):
    loss_fn = nn.CrossEntropyLoss()
    opt = Adam(model.parameters(), lr=3e-3)
    for epoch in range(epochs):
        total, batches = 0.0, 0
        for xb, yb in loader:
            opt.zero_grad()
            loss = loss_fn(model(Tensor(xb)), yb)
            loss.backward()
            opt.step()
            total += loss.item()
            batches += 1
        print(f"  epoch {epoch + 1:2d}/{epochs}: loss {total / batches:.3f}")


def main():
    print("== 1. data & pre-training ==")
    dataset = make_cifar10_like(samples_per_class=48, size=12)
    train, test = dataset.split(0.8)
    loader = DataLoader(train, batch_size=32, shuffle=True, rng=make_rng(1))
    model = build_small_cnn(channels=(16, 32), in_size=12)
    pretrain(model, loader)
    base_acc = evaluate_accuracy(model, test.images, test.labels)
    print(f"  dense accuracy: {base_acc:.1%}")

    print("\n== 2. pattern-based pruning (ADMM) ==")
    config = PruningConfig(num_patterns=8, connectivity_rate=2.0, retrain_epochs=8)
    config.admm.iterations = 5
    config.admm.epochs_per_iteration = 3
    config.admm.rho = 0.1
    config.admm.lr = 3e-3
    result = PatDNNPruner(config).fit(model, loader)
    pruned_acc = evaluate_accuracy(model, test.images, test.labels)
    print(f"  pattern set: {result.pattern_set}")
    print(f"  conv compression: {result.conv_compression_rate:.2f}x")
    print(f"  pruned accuracy:  {pruned_acc:.1%} (dense was {base_acc:.1%})")

    print("\n== 3. compile & execute through FKW kernels ==")
    session = InferenceSession(
        model, (3, 12, 12), pattern_set=result.pattern_set, assignments=result.assignments
    )
    logits = session.run(test.images[:64])
    compiled_acc = float((logits.argmax(1) == test.labels[:64]).mean())
    print(f"  graph passes applied: {session.pass_report.applied}")
    print(f"  compiled-model accuracy on 64 samples: {compiled_acc:.1%} (bit-exact vs reference)")

    print("\n== 4. simulated mobile latency (Snapdragon 855, VGG-class layer) ==")
    # The small CNN above is overhead-dominated on a phone; the latency
    # story is about full-scale layers, so probe one (VGG L5-class).
    from repro.frameworks import get_engine
    from repro.hardware import SNAPDRAGON_855
    from repro.models.spec import ConvSpec, ModelSpec

    spec = ModelSpec(
        "vgg-probe", "imagenet",
        [ConvSpec("L5", 128, 256, 3, padding=1, in_hw=56)],
        total_layers=1,
    )
    dense = get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="dense").prepare(spec).latency_ms
    pattern = get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="pattern").prepare(spec).latency_ms
    print(f"  dense:   {dense:.3f} ms")
    print(f"  pattern: {pattern:.3f} ms  ({dense / pattern:.2f}x faster)")


if __name__ == "__main__":
    main()
