"""Sharded serving: scale one pruned model across worker processes.

PR 2's micro-batching server coalesces concurrent requests inside one
process; this example takes the next scaling steps from the ROADMAP —
multi-session sharding across processes, made resilient:

1. build a pattern-pruned small CNN (one-shot projection, no ADMM) and
   capture it as a picklable ``SessionSpec`` + on-disk artifact bundle,
2. stand up a ``ShardedServer``: worker processes each rebuild the
   session from the spec, tensors move over shared-memory slot rings,
   and a breaker-gated, latency-aware router spreads the load,
3. SIGKILL a worker mid-traffic: the router retries the affected
   requests on healthy shards and respawns the dead one — **zero**
   client-visible errors, every output still verified,
4. read the resilience counters (retries, breaker trips, shed) off
   ``cluster_stats``.

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
import time

import numpy as np

from repro.runtime import ServingConfig
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

N_SHARDS = 2
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 40
IN_SIZE = 12


def drive(server, samples, expected, requests_per_client):
    """Closed-loop clients; returns (wallclock s, typed-error count).

    A bare exception (wrong output, hang, untyped error) propagates and
    fails the demo; typed resilience errors are counted — with retries
    on, that count should be zero even through a worker kill.
    """
    typed = [0]
    errors: list[BaseException] = []

    def client(i):
        try:
            for _ in range(requests_per_client):
                try:
                    out = server.submit(samples[i]).result(timeout=60)
                except RuntimeError as exc:
                    if type(exc) is RuntimeError:
                        raise  # not a typed resilience error: a real bug
                    typed[0] += 1
                    continue
                np.testing.assert_allclose(out, expected[i], rtol=1e-4, atol=1e-5)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(len(samples))]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return time.perf_counter() - start, typed[0]


def main():
    print("== 1. capture a pruned model as a SessionSpec ==")
    tmp = tempfile.mkdtemp()
    spec = projected_smallcnn_spec(
        os.path.join(tmp, "bundle.npz"),
        channels=(16, 32),
        in_size=IN_SIZE,
        serving_config=ServingConfig(max_batch=8),
    )
    print(f"  spec: model={spec.model!r} input={spec.input_shape} -> output={spec.output_shape}")
    print(f"  bundle: {spec.bundle_path}")

    session = spec.build()
    rng = np.random.default_rng(0)
    samples = [
        rng.standard_normal((1, 3, IN_SIZE, IN_SIZE)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]
    expected = [session.run(s) for s in samples]
    session.close()

    print(f"\n== 2. serve through {N_SHARDS} worker processes ==")
    # default ResilienceConfig: 2 retries, per-shard circuit breakers
    with ShardedServer(spec, num_shards=N_SHARDS, health_interval_s=0.2) as server:
        print(f"  worker pids: {server.worker_pids()}")
        elapsed, _ = drive(server, samples, expected, REQUESTS_PER_CLIENT)
        total = N_CLIENTS * REQUESTS_PER_CLIENT
        print(f"  {total} requests in {elapsed:.2f} s ({total / elapsed:.0f} req/s), "
              f"outputs verified")
        stats = server.cluster_stats
        for entry in stats["shards"]:
            serving = entry["serving"] or {}
            print(f"  shard {entry['shard']}: {entry['requests']} requests, "
                  f"breaker {entry['breaker']['state']}, "
                  f"mean batch {serving.get('mean_batch', 0.0):.2f}, "
                  f"p95 {serving.get('p95_ms', 0.0):.2f} ms")

        print("\n== 3. SIGKILL a worker mid-traffic (retries make it invisible) ==")
        victim_pid = server.worker_pids()[0]
        killer = threading.Timer(0.15, lambda: os.kill(victim_pid, signal.SIGKILL))
        killer.start()
        elapsed, typed = drive(server, samples, expected, REQUESTS_PER_CLIENT)
        killer.join()
        stats = server.cluster_stats
        print(f"  killed pid {victim_pid}: {typed} client-visible error(s) "
              f"(in-flight requests were resubmitted to healthy shards)")
        print(f"  router respawned {stats['respawns']} shard(s); "
              f"new pids: {server.worker_pids()}; alive shards: {stats['alive_shards']}")
        if typed:
            raise SystemExit("expected zero client-visible errors with retries on")

        print("\n== 4. resilience counters (cluster_stats) ==")
        print(f"  retries: {stats['retries']}, hedges: {stats['hedges']}, "
              f"shed: {stats['shed']}, timed out: {stats['timed_out']}, "
              f"corrupt caught: {stats['corrupt']}")
        for entry in stats["shards"]:
            b = entry["breaker"]
            print(f"  shard {entry['shard']} breaker: {b['state']} "
                  f"(trips {b['trips']}, failures {b['failures']}, "
                  f"successes {b['successes']})")
        server.close()
        stats = server.cluster_stats

    print(f"\n  final: {stats['requests']} routed requests, {stats['errors']} errors, "
          f"cluster mean batch {stats['mean_batch']:.2f}")


if __name__ == "__main__":
    main()
