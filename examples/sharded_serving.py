"""Sharded serving: scale one pruned model across worker processes.

PR 2's micro-batching server coalesces concurrent requests inside one
process; this example takes the next scaling step from the ROADMAP —
multi-session sharding across processes:

1. build a pattern-pruned small CNN (one-shot projection, no ADMM) and
   capture it as a picklable ``SessionSpec`` + on-disk artifact bundle,
2. stand up a ``ShardedServer``: worker processes each rebuild the
   session from the spec, tensors move over shared-memory slot rings,
   and a least-outstanding-requests router spreads the load,
3. drive it with closed-loop client threads and read the aggregated
   cluster stats,
4. kill a worker mid-traffic and watch the router fail the affected
   futures, respawn the shard, and keep serving.

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
import time

import numpy as np

from repro.runtime import ServingConfig, ShardCrashedError
from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

N_SHARDS = 2
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 40
IN_SIZE = 12


def drive(server, samples, expected, requests_per_client):
    """Closed-loop clients; returns (wallclock s, crashed-request count)."""
    crashed = [0]
    errors: list[BaseException] = []

    def client(i):
        try:
            for _ in range(requests_per_client):
                try:
                    out = server.submit(samples[i]).result(timeout=60)
                except ShardCrashedError:
                    crashed[0] += 1  # real clients would retry; we just count
                    continue
                np.testing.assert_allclose(out, expected[i], rtol=1e-4, atol=1e-5)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(len(samples))]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return time.perf_counter() - start, crashed[0]


def main():
    print("== 1. capture a pruned model as a SessionSpec ==")
    tmp = tempfile.mkdtemp()
    spec = projected_smallcnn_spec(
        os.path.join(tmp, "bundle.npz"),
        channels=(16, 32),
        in_size=IN_SIZE,
        serving_config=ServingConfig(max_batch=8),
    )
    print(f"  spec: model={spec.model!r} input={spec.input_shape} -> output={spec.output_shape}")
    print(f"  bundle: {spec.bundle_path}")

    session = spec.build()
    rng = np.random.default_rng(0)
    samples = [
        rng.standard_normal((1, 3, IN_SIZE, IN_SIZE)).astype(np.float32)
        for _ in range(N_CLIENTS)
    ]
    expected = [session.run(s) for s in samples]
    session.close()

    print(f"\n== 2. serve through {N_SHARDS} worker processes ==")
    with ShardedServer(spec, num_shards=N_SHARDS, health_interval_s=0.2) as server:
        print(f"  worker pids: {server.worker_pids()}")
        elapsed, _ = drive(server, samples, expected, REQUESTS_PER_CLIENT)
        total = N_CLIENTS * REQUESTS_PER_CLIENT
        print(f"  {total} requests in {elapsed:.2f} s ({total / elapsed:.0f} req/s), "
              f"outputs verified")
        stats = server.cluster_stats
        for entry in stats["shards"]:
            serving = entry["serving"] or {}
            print(f"  shard {entry['shard']}: {entry['requests']} requests, "
                  f"mean batch {serving.get('mean_batch', 0.0):.2f}, "
                  f"p95 {serving.get('p95_ms', 0.0):.2f} ms")

        print("\n== 3. kill a worker mid-traffic (self-healing) ==")
        victim_pid = server.worker_pids()[0]
        killer = threading.Timer(0.15, lambda: os.kill(victim_pid, signal.SIGKILL))
        killer.start()
        elapsed, crashed = drive(server, samples, expected, REQUESTS_PER_CLIENT)
        killer.join()
        stats = server.cluster_stats
        print(f"  killed pid {victim_pid}; {crashed} in-flight request(s) got "
              f"ShardCrashedError (no hangs), router respawned {stats['respawns']} shard(s)")
        print(f"  new pids: {server.worker_pids()}; alive shards: {stats['alive_shards']}")
        server.close()
        stats = server.cluster_stats

    print(f"\n  final: {stats['requests']} routed requests, {stats['errors']} errors, "
          f"cluster mean batch {stats['mean_batch']:.2f}")


if __name__ == "__main__":
    main()
