"""Deploy full-scale VGG-16 to a (simulated) phone — the Figure 12 story.

Reproduces the headline evaluation: compile pattern-pruned VGG-16 for
the Snapdragon 855 and compare against the TFLite/TVM/MNN baselines on
CPU and GPU, then print one layer's LR (Figure 8) and generated source
(Figure 7).

Run:  python examples/mobile_deployment_vgg.py
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.compiler.codegen import generate_source
from repro.frameworks import UnsupportedModelError, get_engine
from repro.hardware import SNAPDRAGON_855
from repro.models import get_spec


def main():
    spec = get_spec("vgg16", "imagenet")
    print(f"model: {spec} ({spec.conv_macs / 1e9:.1f} GMACs/inference)")

    table = ResultTable(
        "VGG-16 / ImageNet on Snapdragon 855 (conv latency, ms)",
        ["unit", "TFLite", "TVM", "MNN", "PatDNN dense", "PatDNN CSR", "PatDNN pattern"],
    )
    compiled = None
    for unit in ("cpu", "gpu"):
        row = [unit]
        for engine in ("tflite", "tvm", "mnn"):
            try:
                ms = get_engine(engine, SNAPDRAGON_855, unit).prepare(spec).latency_ms
                row.append(f"{ms:.1f}")
            except UnsupportedModelError:
                row.append("N/A")
        for mode in ("dense", "csr", "pattern"):
            eng = get_engine("patdnn", SNAPDRAGON_855, unit, mode=mode)
            prepared = eng.prepare(spec)
            row.append(f"{prepared.latency_ms:.1f}")
            if mode == "pattern" and unit == "cpu":
                compiled = prepared.compiled
        table.add(*row)
    table.note("paper: TFLite 818.1 ms CPU; PatDNN 18.9 ms GPU; TFLite GPU unsupported")
    print()
    print(table.to_text())

    layer = compiled.layers[3]  # L4-class layer
    print(f"\n== layerwise representation for {layer.spec.name} (Figure 8) ==")
    print(layer.lr.to_yaml())
    print(f"\n== generated source skeleton (Figure 7, opt={layer.opt_level.name}) ==")
    src = generate_source(layer.fkw, "lre")
    print("\n".join(src.splitlines()[:24]))
    print("...")
    print(
        f"\nFKW storage: {layer.fkw.num_kernels} kernels, {layer.fkw.nnz} weights, "
        f"{layer.fkw.overhead_bytes()} B index overhead "
        f"({layer.fkw.overhead_bytes() / layer.fkw.total_bytes():.1%} of total)"
    )


if __name__ == "__main__":
    main()
