"""Quantized deployment: FKW weights in fp16 / int8 (paper §2.2 + ADMM-NN).

The paper runs all GPU experiments in 16-bit floats; its companion work
(ADMM-NN) adds quantization to the same ADMM machinery.  This example
quantizes a pattern-pruned model's FKW weights to fp16 and int8 and
reports storage and end-to-end accuracy impact.

Run:  python examples/quantized_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import ResultTable
from repro.compiler.codegen import generate_kernel
from repro.compiler.storage import FKWLayer
from repro.core import PatDNNPruner, PruningConfig
from repro.core.metrics import evaluate_accuracy
from repro.core.quantization import QuantizedFKW
from repro.data import DataLoader, make_cifar10_like
from repro.models import build_small_cnn
from repro.training import Trainer
from repro.utils.misc import human_bytes
from repro.utils.rng import make_rng


def main():
    print("train + prune a small CNN...")
    train, test = make_cifar10_like(samples_per_class=48, size=12).split(0.8)
    loader = DataLoader(train, batch_size=32, shuffle=True, rng=make_rng(2))
    model = build_small_cnn(channels=(16, 32), in_size=12)
    Trainer(model, loader).run(epochs=12)

    config = PruningConfig(num_patterns=8, connectivity_rate=2.0, retrain_epochs=6)
    config.admm.iterations = 4
    config.admm.rho = 0.1
    result = PatDNNPruner(config).fit(model, loader)
    fp32_acc = evaluate_accuracy(model, test.images, test.labels)
    print(f"fp32 pruned accuracy: {fp32_acc:.1%}")

    # Pack every pruned conv to FKW and quantize.
    from repro import nn

    table = ResultTable(
        "Quantized FKW deployment",
        ["format", "weight bytes", "max |err|", "accuracy %"],
    )
    layers: dict[str, FKWLayer] = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d) and name in result.assignments:
            layers[name] = FKWLayer.from_pruned(
                module.weight.data, result.assignments[name], result.pattern_set
            )
    total_fp32 = sum(l.weights.nbytes for l in layers.values())
    table.add("fp32", human_bytes(total_fp32), "0", f"{fp32_acc * 100:.1f}")

    for dtype in ("fp16", "int8"):
        quantized = {n: QuantizedFKW.from_fkw(l, dtype) for n, l in layers.items()}
        # Write dequantized weights back and evaluate end to end.
        modules = dict(model.named_modules())
        originals = {}
        for name, q in quantized.items():
            originals[name] = modules[name].weight.data.copy()
            modules[name].weight.data = q.to_dense()
        acc = evaluate_accuracy(model, test.images, test.labels)
        max_err = max(q.max_error() for q in quantized.values())
        total = sum(q.weight_bytes() for q in quantized.values())
        table.add(dtype, human_bytes(total), f"{max_err:.4f}", f"{acc * 100:.1f}")
        for name, orig in originals.items():
            modules[name].weight.data = orig

    print()
    print(table.to_text())
    print("\nfp16 should be accuracy-neutral (the paper's GPU setting);")
    print("int8 costs little at 4-entry-kernel granularity with per-kernel scales.")


if __name__ == "__main__":
    main()
