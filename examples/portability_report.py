"""Portability across SoCs (Figure 18) plus a storage-format report.

Prints VGG-16 latency for every engine on Snapdragon 855 / 845 and
Kirin 980, then the FKW-vs-CSR storage comparison (Figure 16) for the
same compiled model.

Run:  python examples/portability_report.py
"""

from __future__ import annotations

from repro.bench.perf_experiments import fig16_fkw_vs_csr, fig18_portability
from repro.utils.misc import human_bytes


def main():
    table = fig18_portability()
    print(table.to_text())

    print()
    print(fig16_fkw_vs_csr().to_text())

    # Whole-model storage numbers.
    from repro.frameworks import get_engine
    from repro.hardware import SNAPDRAGON_855
    from repro.models import get_spec

    spec = get_spec("vgg16", "imagenet")
    prepared = get_engine("patdnn", SNAPDRAGON_855, "cpu").prepare(spec)
    compiled = prepared.compiled
    dense_bytes = spec.conv_weight_count * 4
    fkw_bytes = sum(l.fkw.total_bytes() for l in compiled.layers)
    overhead = sum(l.fkw.overhead_bytes() for l in compiled.layers)
    print("\n== whole-model conv storage ==")
    print(f"dense fp32:        {human_bytes(dense_bytes)}")
    print(f"FKW (weights+idx): {human_bytes(fkw_bytes)}  ({dense_bytes / fkw_bytes:.1f}x smaller)")
    print(f"  of which index:  {human_bytes(overhead)} ({overhead / fkw_bytes:.1%})")


if __name__ == "__main__":
    main()
